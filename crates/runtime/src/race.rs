//! Dynamic race detection: a lightweight vector-clock checker.
//!
//! The dynamic oracle for the static `sage race` pass. Each rank carries a
//! vector clock, incremented once per task it runs; clocks join when a rank
//! receives a mailbox hand-off, exactly mirroring the happens-before edges
//! the static pass proves from the transfer ledger. Every task's
//! logical-buffer accesses — a producer's write of its striped contribution
//! to a consumer port, a consumer's read of the assembled port — are stamped
//! with the rank's clock at access time and checked against earlier accesses
//! to the same port *version* (the consumer iteration the bytes belong to,
//! so a `delay` arc's write at iteration `i` lands on version `i + delay`).
//! Two accesses conflict when at least one writes, their global byte
//! intervals overlap, and neither clock dominates the other; the run then
//! fails typed with [`RuntimeError::RaceDetected`] naming both accesses.
//!
//! The detector is shared across ranks of the in-process cluster. Distributed
//! backends get a degraded per-process instance: it only ever sees its own
//! rank's serial accesses, which are totally ordered, so it is trivially
//! clean — cross-rank direction-B validation runs on the local transport.

use crate::function::RuntimeError;
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex, PoisonError};

/// A global byte-interval list: sorted, disjoint `(start, end)` pairs.
pub type Intervals = Arc<Vec<(usize, usize)>>;

/// One recorded access to a port version.
struct Access {
    write: bool,
    /// Task path of the accessor, e.g. `` `src[0]` (node 0, slot 0)``.
    task: String,
    rank: u32,
    iteration: u32,
    clock: Vec<u32>,
    intervals: Intervals,
    /// FNV-1a of the written stripe bytes; lets two writers that splat
    /// identical bytes over identical intervals pass as benign (the dynamic
    /// mirror of `SAGE073`). Zero for reads.
    content: u64,
}

/// Accesses keyed by `(consumer fn, input-port group, port version)`.
type Records = HashMap<(u32, u32, u32), Vec<Access>>;

struct Inner {
    /// One vector clock per rank; rank `r` only bumps component `r`.
    clocks: Vec<Vec<u32>>,
    /// In-flight transfer stamps: tag -> sender clocks at send time, FIFO.
    /// A queue, not a single slot: streaming execution (and ring-masked
    /// pipeline tags) can put two messages with the same tag in flight at
    /// once, and the transport delivers per-(src, tag) pairs in send order,
    /// so the matching receive joins the *oldest* stamp.
    msgs: HashMap<u64, VecDeque<Vec<u32>>>,
    records: Records,
    inserts: usize,
}

/// Shared vector-clock race-detector state for one run.
pub struct RaceState {
    inner: Mutex<Inner>,
}

/// `a` happens-before-or-equals `b` componentwise.
fn dominated(a: &[u32], b: &[u32]) -> bool {
    a.iter().zip(b.iter()).all(|(x, y)| x <= y)
}

/// Coalesces several sorted interval lists into one sorted, disjoint list.
pub fn union_intervals<'a, I>(lists: I) -> Vec<(usize, usize)>
where
    I: IntoIterator<Item = &'a [(usize, usize)]>,
{
    let mut all: Vec<(usize, usize)> = lists.into_iter().flatten().copied().collect();
    all.sort_unstable();
    let mut out: Vec<(usize, usize)> = Vec::with_capacity(all.len());
    for (s, e) in all {
        if s >= e {
            continue;
        }
        match out.last_mut() {
            Some(last) if s <= last.1 => last.1 = last.1.max(e),
            _ => out.push((s, e)),
        }
    }
    out
}

/// Whether two sorted, disjoint interval lists share any byte.
pub fn overlaps(a: &[(usize, usize)], b: &[(usize, usize)]) -> bool {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if a[i].1 <= b[j].0 {
            i += 1;
        } else if b[j].1 <= a[i].0 {
            j += 1;
        } else {
            return true;
        }
    }
    false
}

/// FNV-1a 64 over a byte slice (the repo's standard content fingerprint).
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

impl RaceState {
    /// Fresh detector state for a cluster of `ranks` ranks.
    pub fn new(ranks: usize) -> RaceState {
        RaceState {
            inner: Mutex::new(Inner {
                clocks: vec![vec![0; ranks]; ranks],
                msgs: HashMap::new(),
                records: Records::new(),
                inserts: 0,
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// A rank is about to run a task: advance its clock component.
    pub fn task_begin(&self, rank: u32) {
        let mut g = self.lock();
        let r = rank as usize;
        g.clocks[r][r] += 1;
    }

    /// A rank is sending transfer `tag`: stamp it with the sender's clock.
    /// Call before the bytes are handed to the transport so the receiver
    /// can never observe the message ahead of its stamp.
    pub fn stamp_send(&self, rank: u32, tag: u64) {
        let mut g = self.lock();
        let clock = g.clocks[rank as usize].clone();
        g.msgs.entry(tag).or_default().push_back(clock);
    }

    /// A rank received transfer `tag`: join the sender's oldest pending
    /// stamp into its clock (stamps and deliveries are both per-tag FIFO).
    /// Unstamped tags (degraded per-process mode) are ignored.
    pub fn join_recv(&self, rank: u32, tag: u64) {
        let mut g = self.lock();
        let stamp = match g.msgs.get_mut(&tag) {
            Some(q) => {
                let stamp = q.pop_front();
                if q.is_empty() {
                    g.msgs.remove(&tag);
                }
                stamp
            }
            None => None,
        };
        if let Some(stamp) = stamp {
            for (c, s) in g.clocks[rank as usize].iter_mut().zip(stamp.iter()) {
                *c = (*c).max(*s);
            }
        }
    }

    /// Records a write of `intervals` (with content fingerprint `content`)
    /// to port version `key` and checks it against every earlier access.
    #[allow(clippy::too_many_arguments)]
    pub fn write(
        &self,
        rank: u32,
        key: (u32, u32, u32),
        port: &str,
        task: String,
        iteration: u32,
        intervals: Intervals,
        content: u64,
    ) -> Result<(), RuntimeError> {
        self.record(rank, key, port, task, iteration, intervals, true, content)
    }

    /// Records a read of `intervals` from port version `key` and checks it
    /// against every earlier write.
    pub fn read(
        &self,
        rank: u32,
        key: (u32, u32, u32),
        port: &str,
        task: String,
        iteration: u32,
        intervals: Intervals,
    ) -> Result<(), RuntimeError> {
        self.record(rank, key, port, task, iteration, intervals, false, 0)
    }

    #[allow(clippy::too_many_arguments)]
    fn record(
        &self,
        rank: u32,
        key: (u32, u32, u32),
        port: &str,
        task: String,
        iteration: u32,
        intervals: Intervals,
        write: bool,
        content: u64,
    ) -> Result<(), RuntimeError> {
        let mut g = self.lock();
        let clock = g.clocks[rank as usize].clone();
        let access = Access {
            write,
            task,
            rank,
            iteration,
            clock,
            intervals,
            content,
        };
        if let Some(existing) = g.records.get(&key) {
            for prior in existing {
                if !(prior.write || access.write) || prior.rank == access.rank {
                    // Read/read never conflicts; same-rank accesses are
                    // serialized by the rank's schedule walk.
                    continue;
                }
                if !overlaps(&prior.intervals, &access.intervals) {
                    continue;
                }
                if dominated(&prior.clock, &access.clock) || dominated(&access.clock, &prior.clock)
                {
                    continue;
                }
                // Benign splat: two writers laying identical bytes over
                // identical intervals produce the same buffer either way.
                if prior.write
                    && access.write
                    && prior.content == access.content
                    && prior.intervals == access.intervals
                {
                    continue;
                }
                let describe = |a: &Access| {
                    format!(
                        "{} by {} at iteration {}",
                        if a.write { "write" } else { "read" },
                        a.task,
                        a.iteration
                    )
                };
                let (mut first, mut second) = (describe(prior), describe(&access));
                if second < first {
                    std::mem::swap(&mut first, &mut second);
                }
                return Err(RuntimeError::RaceDetected {
                    port: port.to_string(),
                    first,
                    second,
                });
            }
        }
        g.records.entry(key).or_default().push(access);
        g.inserts += 1;
        if g.inserts.is_multiple_of(1024) {
            // Bound memory on long runs: versions far behind the newest one
            // recorded for the same port can no longer conflict with
            // anything the executor will still produce.
            let mut newest: HashMap<(u32, u32), u32> = HashMap::new();
            for &(f, p, v) in g.records.keys() {
                let e = newest.entry((f, p)).or_insert(v);
                *e = (*e).max(v);
            }
            g.records
                .retain(|&(f, p, v), _| v + 64 >= *newest.get(&(f, p)).unwrap_or(&0));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(list: &[(usize, usize)]) -> Intervals {
        Arc::new(list.to_vec())
    }

    #[test]
    fn interval_overlap() {
        assert!(overlaps(&[(0, 4), (8, 12)], &[(3, 5)]));
        assert!(!overlaps(&[(0, 4)], &[(4, 8)]));
        assert!(!overlaps(&[], &[(0, 1)]));
    }

    #[test]
    fn unordered_cross_rank_writes_race() {
        let s = RaceState::new(2);
        s.task_begin(0);
        s.task_begin(1);
        let key = (2, 0, 0);
        s.write(0, key, "snk.in", "`a[0]`".into(), 0, iv(&[(0, 8)]), 1)
            .unwrap();
        let err = s
            .write(1, key, "snk.in", "`b[0]`".into(), 0, iv(&[(4, 12)]), 2)
            .unwrap_err();
        match err {
            RuntimeError::RaceDetected {
                port,
                first,
                second,
            } => {
                assert_eq!(port, "snk.in");
                assert!(first.contains("`a[0]`") || second.contains("`a[0]`"));
                assert!(first.contains("`b[0]`") || second.contains("`b[0]`"));
            }
            other => panic!("expected RaceDetected, got {other}"),
        }
    }

    #[test]
    fn message_join_orders_accesses() {
        let s = RaceState::new(2);
        let key = (2, 0, 0);
        s.task_begin(0);
        s.write(0, key, "snk.in", "`a[0]`".into(), 0, iv(&[(0, 8)]), 1)
            .unwrap();
        s.stamp_send(0, 42);
        s.task_begin(1);
        s.join_recv(1, 42);
        // Rank 1 joined rank 0's clock, so its read is ordered after the
        // write and its own later write dominates too.
        s.read(1, key, "snk.in", "`c[1]`".into(), 0, iv(&[(0, 8)]))
            .unwrap();
        s.write(1, key, "snk.in", "`b[1]`".into(), 0, iv(&[(0, 8)]), 2)
            .unwrap();
    }

    #[test]
    fn identical_splat_is_benign() {
        let s = RaceState::new(2);
        let key = (2, 0, 0);
        s.task_begin(0);
        s.task_begin(1);
        s.write(0, key, "snk.in", "`a[0]`".into(), 0, iv(&[(0, 8)]), 7)
            .unwrap();
        // Same intervals, same content hash: benign even though unordered.
        s.write(1, key, "snk.in", "`b[0]`".into(), 0, iv(&[(0, 8)]), 7)
            .unwrap();
        // Different content on the same region is a race.
        let err = s
            .write(1, key, "snk.in", "`c[0]`".into(), 0, iv(&[(0, 8)]), 9)
            .unwrap_err();
        assert!(matches!(err, RuntimeError::RaceDetected { .. }));
    }

    #[test]
    fn different_versions_never_conflict() {
        let s = RaceState::new(2);
        s.task_begin(0);
        s.task_begin(1);
        s.write(0, (2, 0, 0), "snk.in", "`a[0]`".into(), 0, iv(&[(0, 8)]), 1)
            .unwrap();
        s.write(1, (2, 0, 1), "snk.in", "`b[0]`".into(), 1, iv(&[(0, 8)]), 2)
            .unwrap();
    }

    #[test]
    fn reads_on_both_ranks_do_not_conflict() {
        let s = RaceState::new(2);
        s.task_begin(0);
        s.task_begin(1);
        let key = (2, 0, 0);
        s.read(0, key, "snk.in", "`a[0]`".into(), 0, iv(&[(0, 8)]))
            .unwrap();
        s.read(1, key, "snk.in", "`b[1]`".into(), 0, iv(&[(0, 8)]))
            .unwrap();
    }
}
