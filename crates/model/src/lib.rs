//! # sage-model
//!
//! The **SAGE Designer** model layer: everything the paper's three editors
//! capture.
//!
//! * the **application editor** builds a hierarchical dataflow graph of
//!   functional blocks connected through ports ([`graph`], [`block`],
//!   [`port`]);
//! * the **data type editor** defines data types and the striping /
//!   parallelization relationships between functions ([`datatype`]);
//! * the **hardware editor** builds the hardware architecture hierarchically
//!   from the processor up to the system level ([`hardware`]);
//! * primitive and hierarchical blocks are stored on **software and hardware
//!   shelves** for later reuse ([`shelf`]);
//! * the application-to-hardware **mapping** ([`mapping`]) is what AToT
//!   refines and the glue-code generator consumes.
//!
//! Every model object carries a free-form property bag so that the Alter
//! language (`sage-alter`) can traverse objects and "collect the relevant
//! information from the various attributes and properties" exactly as the
//! paper describes.

#![warn(missing_docs)]

pub mod block;
pub mod datatype;
pub mod dot;
pub mod graph;
pub mod hardware;
pub mod ids;
pub mod mapping;
pub mod port;
pub mod shelf;
pub mod validate;

pub use block::{Block, BlockKind, CostModel};
pub use datatype::{DataType, ScalarKind};
pub use graph::{AppGraph, Connection, Endpoint};
pub use hardware::{
    Board, Chassis, FabricSpec, HardwareSpec, NodeCapacity, Processor, ProcessorInstance,
};
pub use ids::{BlockId, ConnId, ProcId};
pub use mapping::Mapping;
pub use port::{Direction, Port, Striping};
pub use shelf::{HardwareShelf, ShelfFunction, SoftwareShelf};
pub use validate::{validate, validate_all, ModelError};

use std::collections::BTreeMap;

/// A property value attached to a model object (readable from Alter).
#[derive(Clone, Debug, PartialEq)]
pub enum PropValue {
    /// String property.
    Str(String),
    /// Integer property.
    Int(i64),
    /// Floating-point property.
    Float(f64),
    /// Boolean property.
    Bool(bool),
}

impl PropValue {
    /// Renders the value as display text (used by Alter's `prop` builtin).
    pub fn as_text(&self) -> String {
        match self {
            PropValue::Str(s) => s.clone(),
            PropValue::Int(i) => i.to_string(),
            PropValue::Float(f) => f.to_string(),
            PropValue::Bool(b) => b.to_string(),
        }
    }
}

/// An ordered property bag; ordered so generated glue code is deterministic.
pub type Properties = BTreeMap<String, PropValue>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prop_value_text() {
        assert_eq!(PropValue::Str("x".into()).as_text(), "x");
        assert_eq!(PropValue::Int(-3).as_text(), "-3");
        assert_eq!(PropValue::Float(1.5).as_text(), "1.5");
        assert_eq!(PropValue::Bool(true).as_text(), "true");
    }
}
