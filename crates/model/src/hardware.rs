//! The **hardware editor**: hierarchical hardware architecture models.
//!
//! Paper §1.1: "In the hardware editor, the hardware architecture is built
//! hierarchically from the processor all the way up to the system level."
//! The paper's testbed is "two quad-PowerPC boards ... within a 21-slot VME
//! chassis. Each PowerPC has 64 MBytes of DRAM and can communicate through
//! 160 MBytes Myrinet fabric interconnect to each other (intra-board) and to
//! the outside world (inter-board)."
//!
//! A [`HardwareSpec`] flattens to a dense list of [`ProcessorInstance`]s and
//! a pairwise communication-cost matrix, which AToT's scheduler and the
//! fabric's virtual-time model both consume.

use crate::ids::ProcId;
use crate::Properties;

/// A processor type, captured on the hardware shelf.
#[derive(Clone, Debug, PartialEq)]
pub struct Processor {
    /// Model name, e.g. `"PowerPC 603e"`.
    pub name: String,
    /// Core clock in MHz.
    pub clock_mhz: f64,
    /// Sustainable floating-point operations per cycle (fused estimates).
    pub flops_per_cycle: f64,
    /// Local DRAM in megabytes.
    pub mem_mb: f64,
    /// Sustainable local memory bandwidth in MB/s.
    pub mem_bw_mbps: f64,
}

impl Processor {
    /// Peak sustainable flop rate in flops/second.
    pub fn flops_per_sec(&self) -> f64 {
        self.clock_mhz * 1.0e6 * self.flops_per_cycle
    }

    /// Local DRAM capacity in bytes.
    pub fn mem_bytes(&self) -> f64 {
        self.mem_mb * 1.0e6
    }

    /// Sustainable local memory bandwidth in bytes/second.
    pub fn mem_bw_bytes_per_sec(&self) -> f64 {
        self.mem_bw_mbps * 1.0e6
    }
}

/// A point-to-point or fabric link characterization.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FabricSpec {
    /// Bandwidth in MB/s (the paper's Myrinet: 160 MB/s).
    pub bandwidth_mbps: f64,
    /// One-way message latency in microseconds.
    pub latency_us: f64,
}

impl FabricSpec {
    /// Transfer time in seconds for a message of `bytes` bytes.
    pub fn transfer_secs(&self, bytes: usize) -> f64 {
        self.latency_us * 1e-6 + bytes as f64 / (self.bandwidth_mbps * 1e6)
    }
}

/// A board: a set of processors sharing an intra-board interconnect.
#[derive(Clone, Debug, PartialEq)]
pub struct Board {
    /// Board name, e.g. `"quad-PPC"`.
    pub name: String,
    /// Processors on the board.
    pub processors: Vec<Processor>,
    /// Intra-board link characteristics.
    pub intra: FabricSpec,
}

/// A chassis: boards joined by a system fabric.
#[derive(Clone, Debug, PartialEq)]
pub struct Chassis {
    /// Chassis name, e.g. `"21-slot VME"`.
    pub name: String,
    /// Boards in slot order.
    pub boards: Vec<Board>,
    /// Inter-board fabric characteristics.
    pub fabric: FabricSpec,
}

/// A complete target hardware model.
#[derive(Clone, Debug, PartialEq)]
pub struct HardwareSpec {
    /// System name, e.g. `"CSPI testbed"`.
    pub name: String,
    /// Chassis in the system (usually one).
    pub chassis: Vec<Chassis>,
    /// Free-form attributes readable from Alter.
    pub props: Properties,
}

/// A flattened compute node: one processor with its location in the
/// hierarchy.
#[derive(Clone, Debug, PartialEq)]
pub struct ProcessorInstance {
    /// Dense node id, `P0..P(N-1)`.
    pub id: ProcId,
    /// The processor's characteristics.
    pub proc: Processor,
    /// Index of the owning chassis.
    pub chassis: usize,
    /// Index of the owning board within the chassis.
    pub board: usize,
    /// Index of the processor within the board.
    pub slot: usize,
}

/// The capacity envelope of one flattened compute node, in absolute units
/// ready for feasibility checks (memory footprints, bandwidth budgets).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NodeCapacity {
    /// Local DRAM capacity in bytes.
    pub mem_bytes: f64,
    /// Peak sustainable flop rate in flops/second.
    pub flops_per_sec: f64,
    /// Sustainable local memory bandwidth in bytes/second.
    pub mem_bw_bytes_per_sec: f64,
}

impl HardwareSpec {
    /// Creates a single-chassis system.
    pub fn single_chassis(name: impl Into<String>, chassis: Chassis) -> HardwareSpec {
        HardwareSpec {
            name: name.into(),
            chassis: vec![chassis],
            props: Properties::new(),
        }
    }

    /// Builds a homogeneous system: `boards` boards of `procs_per_board`
    /// copies of `proc`, with the given intra/inter fabrics.
    pub fn homogeneous(
        name: impl Into<String>,
        proc: Processor,
        boards: usize,
        procs_per_board: usize,
        intra: FabricSpec,
        fabric: FabricSpec,
    ) -> HardwareSpec {
        let board_list = (0..boards)
            .map(|i| Board {
                name: format!("board{i}"),
                processors: vec![proc.clone(); procs_per_board],
                intra,
            })
            .collect();
        HardwareSpec::single_chassis(
            name,
            Chassis {
                name: "chassis0".into(),
                boards: board_list,
                fabric,
            },
        )
    }

    /// Flattens the hierarchy into a dense node list.
    pub fn flatten(&self) -> Vec<ProcessorInstance> {
        let mut out = Vec::new();
        for (ci, ch) in self.chassis.iter().enumerate() {
            for (bi, board) in ch.boards.iter().enumerate() {
                for (si, p) in board.processors.iter().enumerate() {
                    out.push(ProcessorInstance {
                        id: ProcId::from_index(out.len()),
                        proc: p.clone(),
                        chassis: ci,
                        board: bi,
                        slot: si,
                    });
                }
            }
        }
        out
    }

    /// Total number of processors.
    pub fn node_count(&self) -> usize {
        self.chassis
            .iter()
            .map(|c| c.boards.iter().map(|b| b.processors.len()).sum::<usize>())
            .sum()
    }

    /// The link characteristics between two flattened nodes: intra-board if
    /// they share a board, otherwise the chassis fabric (inter-chassis uses
    /// the first chassis' fabric as the system backbone).
    pub fn link_between(&self, a: &ProcessorInstance, b: &ProcessorInstance) -> FabricSpec {
        if a.chassis == b.chassis && a.board == b.board {
            self.chassis[a.chassis].boards[a.board].intra
        } else if a.chassis == b.chassis {
            self.chassis[a.chassis].fabric
        } else {
            self.chassis[0].fabric
        }
    }

    /// The capacity envelope of every flattened node, in node-id order.
    pub fn capacities(&self) -> Vec<NodeCapacity> {
        self.flatten()
            .into_iter()
            .map(|n| NodeCapacity {
                mem_bytes: n.proc.mem_bytes(),
                flops_per_sec: n.proc.flops_per_sec(),
                mem_bw_bytes_per_sec: n.proc.mem_bw_bytes_per_sec(),
            })
            .collect()
    }

    /// Pairwise transfer-time matrix for a `bytes`-byte message, in seconds.
    /// The diagonal is zero (node-local handoff is a buffer swap).
    pub fn comm_matrix(&self, bytes: usize) -> Vec<Vec<f64>> {
        let nodes = self.flatten();
        let n = nodes.len();
        let mut m = vec![vec![0.0; n]; n];
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    m[i][j] = self.link_between(&nodes[i], &nodes[j]).transfer_secs(bytes);
                }
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ppc() -> Processor {
        Processor {
            name: "PowerPC 603e".into(),
            clock_mhz: 200.0,
            flops_per_cycle: 1.0,
            mem_mb: 64.0,
            mem_bw_mbps: 320.0,
        }
    }

    fn myrinet() -> FabricSpec {
        FabricSpec {
            bandwidth_mbps: 160.0,
            latency_us: 20.0,
        }
    }

    #[test]
    fn paper_testbed_shape() {
        // Two quad-PowerPC boards = 8 nodes.
        let hw = HardwareSpec::homogeneous("CSPI", ppc(), 2, 4, myrinet(), myrinet());
        assert_eq!(hw.node_count(), 8);
        let flat = hw.flatten();
        assert_eq!(flat.len(), 8);
        assert_eq!(flat[0].board, 0);
        assert_eq!(flat[4].board, 1);
        assert_eq!(flat[7].id, ProcId(7));
    }

    #[test]
    fn flop_rate() {
        assert_eq!(ppc().flops_per_sec(), 200.0e6);
    }

    #[test]
    fn capacity_envelope_in_absolute_units() {
        let p = ppc();
        assert_eq!(p.mem_bytes(), 64.0e6);
        assert_eq!(p.mem_bw_bytes_per_sec(), 320.0e6);
        let hw = HardwareSpec::homogeneous("t", p, 2, 4, myrinet(), myrinet());
        let caps = hw.capacities();
        assert_eq!(caps.len(), 8);
        for c in caps {
            assert_eq!(c.mem_bytes, 64.0e6);
            assert_eq!(c.flops_per_sec, 200.0e6);
            assert_eq!(c.mem_bw_bytes_per_sec, 320.0e6);
        }
    }

    #[test]
    fn transfer_time_includes_latency_and_bandwidth() {
        let f = myrinet();
        let t = f.transfer_secs(160_000_000); // 160 MB at 160 MB/s = 1s
        assert!((t - 1.0 - 20.0e-6).abs() < 1e-9);
        assert!((f.transfer_secs(0) - 20.0e-6).abs() < 1e-12);
    }

    #[test]
    fn link_selection_intra_vs_inter() {
        let fast = FabricSpec {
            bandwidth_mbps: 400.0,
            latency_us: 5.0,
        };
        let slow = myrinet();
        let hw = HardwareSpec::homogeneous("t", ppc(), 2, 2, fast, slow);
        let flat = hw.flatten();
        assert_eq!(hw.link_between(&flat[0], &flat[1]), fast); // same board
        assert_eq!(hw.link_between(&flat[0], &flat[2]), slow); // cross board
    }

    #[test]
    fn comm_matrix_symmetry_and_zero_diagonal() {
        let hw = HardwareSpec::homogeneous("t", ppc(), 2, 2, myrinet(), myrinet());
        let m = hw.comm_matrix(1024);
        for (i, row) in m.iter().enumerate() {
            assert_eq!(row[i], 0.0);
            for (j, v) in row.iter().enumerate() {
                assert!((v - m[j][i]).abs() < 1e-15);
            }
        }
    }
}
