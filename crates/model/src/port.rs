//! Ports: the sending and receiving points for all data-flow communication.
//!
//! Paper §2: "A function's port object is the sending and receiving point for
//! all data-flow communication between functions; the striping
//! characteristics of a data-flow connection are defined on the source and
//! destination ports. ... A function port can be defined in the model to be
//! of type replicated or striped. Replicated ports represent data-flow
//! communications in which the data is replicated for each thread of the
//! host function. Striped ports represent data-flow communications in which
//! the data is sliced or divided evenly among the threads of the host
//! function. The port striping type applies to both sending (outgoing) and
//! receiving (incoming) ports."

use crate::datatype::DataType;

/// Data-flow direction of a port relative to its host block.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Receiving (incoming) port.
    In,
    /// Sending (outgoing) port.
    Out,
}

/// Port striping convention (paper §2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Striping {
    /// The full datum is replicated for each thread of the host function.
    Replicated,
    /// The datum is sliced evenly among the threads of the host function
    /// along array dimension `dim` (0 = outermost, e.g. rows of a row-major
    /// matrix).
    Striped {
        /// Array dimension along which slicing happens.
        dim: usize,
    },
}

impl Striping {
    /// Shorthand for striping along the outermost (row) dimension.
    pub const BY_ROWS: Striping = Striping::Striped { dim: 0 };
    /// Shorthand for striping along the second (column) dimension.
    pub const BY_COLS: Striping = Striping::Striped { dim: 1 };

    /// `true` for the replicated convention.
    pub fn is_replicated(self) -> bool {
        matches!(self, Striping::Replicated)
    }
}

/// A port on a functional block.
#[derive(Clone, Debug, PartialEq)]
pub struct Port {
    /// Port name, unique among the host block's ports of the same direction.
    pub name: String,
    /// Whether the port receives or sends.
    pub direction: Direction,
    /// Data type carried by the port.
    pub data_type: DataType,
    /// Striping convention for multi-threaded host functions.
    pub striping: Striping,
}

impl Port {
    /// Creates an incoming port.
    pub fn input(name: impl Into<String>, data_type: DataType, striping: Striping) -> Port {
        Port {
            name: name.into(),
            direction: Direction::In,
            data_type,
            striping,
        }
    }

    /// Creates an outgoing port.
    pub fn output(name: impl Into<String>, data_type: DataType, striping: Striping) -> Port {
        Port {
            name: name.into(),
            direction: Direction::Out,
            data_type,
            striping,
        }
    }

    /// Checks that this port's striping is realizable for `threads` host
    /// threads: replicated ports always are; striped ports need the sliced
    /// dimension to divide evenly.
    pub fn striping_valid_for(&self, threads: usize) -> bool {
        match self.striping {
            Striping::Replicated => threads > 0,
            Striping::Striped { dim } => self.data_type.stripeable(dim, threads),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datatype::DataType;

    #[test]
    fn constructors_set_direction() {
        let p = Port::input("in", DataType::Complex, Striping::Replicated);
        assert_eq!(p.direction, Direction::In);
        let q = Port::output("out", DataType::Complex, Striping::Replicated);
        assert_eq!(q.direction, Direction::Out);
    }

    #[test]
    fn replicated_valid_for_any_positive_threads() {
        let p = Port::input("in", DataType::Complex, Striping::Replicated);
        assert!(p.striping_valid_for(1));
        assert!(p.striping_valid_for(16));
        assert!(!p.striping_valid_for(0));
    }

    #[test]
    fn striped_requires_even_division() {
        let p = Port::input("m", DataType::complex_matrix(8, 4), Striping::BY_ROWS);
        assert!(p.striping_valid_for(2));
        assert!(p.striping_valid_for(8));
        assert!(!p.striping_valid_for(3));
        let q = Port::input("m", DataType::complex_matrix(8, 4), Striping::BY_COLS);
        assert!(q.striping_valid_for(4));
        assert!(!q.striping_valid_for(8));
    }

    #[test]
    fn striping_shorthands() {
        assert_eq!(Striping::BY_ROWS, Striping::Striped { dim: 0 });
        assert!(Striping::Replicated.is_replicated());
        assert!(!Striping::BY_COLS.is_replicated());
    }
}
