//! The application editor's dataflow graph.
//!
//! A graph owns functional blocks and the data-flow arcs (connections)
//! between their ports. Graphs are hierarchical: a block may wrap a nested
//! graph, and [`AppGraph::flatten`] expands the hierarchy into the flat list
//! of primitive function instances that the glue-code generator orders and
//! assigns IDs `0..N-1`.

use crate::block::{Block, BlockKind};
use crate::ids::{BlockId, ConnId};
use crate::port::{Direction, Port};
use crate::validate::ModelError;
use crate::Properties;
use std::collections::HashMap;

/// One end of a connection: a port (by declaration index) on a block.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Endpoint {
    /// Host block.
    pub block: BlockId,
    /// Index into the host block's `ports` vector.
    pub port: usize,
}

/// A data-flow arc from an output port to an input port.
#[derive(Clone, Debug, PartialEq)]
pub struct Connection {
    /// Dense id (index into the graph's connection list).
    pub id: ConnId,
    /// Producing endpoint (an `Out` port).
    pub from: Endpoint,
    /// Consuming endpoint (an `In` port).
    pub to: Endpoint,
}

/// A dataflow application model.
#[derive(Clone, Debug, PartialEq)]
pub struct AppGraph {
    /// Model name (appears in generated glue code).
    pub name: String,
    blocks: Vec<Block>,
    connections: Vec<Connection>,
    /// Free-form attributes readable from Alter.
    pub props: Properties,
}

impl AppGraph {
    /// Creates an empty graph.
    pub fn new(name: impl Into<String>) -> AppGraph {
        AppGraph {
            name: name.into(),
            blocks: Vec::new(),
            connections: Vec::new(),
            props: Properties::new(),
        }
    }

    /// Adds a block, returning its id.
    pub fn add_block(&mut self, block: Block) -> BlockId {
        let id = BlockId::from_index(self.blocks.len());
        self.blocks.push(block);
        id
    }

    /// All blocks in insertion order (the paper's function-instance order).
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// Borrows a block.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.index()]
    }

    /// Mutably borrows a block.
    pub fn block_mut(&mut self, id: BlockId) -> &mut Block {
        &mut self.blocks[id.index()]
    }

    /// Looks a block up by instance name.
    pub fn block_by_name(&self, name: &str) -> Option<BlockId> {
        self.blocks
            .iter()
            .position(|b| b.name == name)
            .map(BlockId::from_index)
    }

    /// All connections in insertion order.
    pub fn connections(&self) -> &[Connection] {
        &self.connections
    }

    /// Number of blocks.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Connects `from_block.from_port` (an output) to `to_block.to_port` (an
    /// input), by port name.
    ///
    /// Validates direction, existence, and type equality. Both fan-out and
    /// fan-in are structurally legal; whether multiple writers into one
    /// input port are *safe* is decided by the static race pass over the
    /// generated glue program (`sage race`), not by the editor.
    pub fn connect(
        &mut self,
        from_block: BlockId,
        from_port: &str,
        to_block: BlockId,
        to_port: &str,
    ) -> Result<ConnId, ModelError> {
        let fp = self
            .block(from_block)
            .port_index(from_port, Direction::Out)
            .ok_or_else(|| ModelError::NoSuchPort {
                block: self.block(from_block).name.clone(),
                port: from_port.to_string(),
            })?;
        let tp = self
            .block(to_block)
            .port_index(to_port, Direction::In)
            .ok_or_else(|| ModelError::NoSuchPort {
                block: self.block(to_block).name.clone(),
                port: to_port.to_string(),
            })?;
        self.connect_endpoints(
            Endpoint {
                block: from_block,
                port: fp,
            },
            Endpoint {
                block: to_block,
                port: tp,
            },
        )
    }

    /// Low-level connect by explicit endpoints.
    pub fn connect_endpoints(
        &mut self,
        from: Endpoint,
        to: Endpoint,
    ) -> Result<ConnId, ModelError> {
        let fport = self.port_at(from).ok_or(ModelError::BadEndpoint)?;
        let tport = self.port_at(to).ok_or(ModelError::BadEndpoint)?;
        if fport.direction != Direction::Out || tport.direction != Direction::In {
            return Err(ModelError::DirectionMismatch {
                from: fport.name.clone(),
                to: tport.name.clone(),
            });
        }
        if fport.data_type != tport.data_type {
            return Err(ModelError::TypeMismatch {
                from: format!(
                    "{}.{} : {}",
                    self.block(from.block).name,
                    fport.name,
                    fport.data_type
                ),
                to: format!(
                    "{}.{} : {}",
                    self.block(to.block).name,
                    tport.name,
                    tport.data_type
                ),
            });
        }
        let id = ConnId::from_index(self.connections.len());
        self.connections.push(Connection { id, from, to });
        Ok(id)
    }

    /// Removes a connection (Designer edit operation). Later connection ids
    /// shift down by one, mirroring the editor's dense arc list.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn disconnect(&mut self, id: ConnId) {
        self.connections.remove(id.index());
        for (i, c) in self.connections.iter_mut().enumerate() {
            c.id = ConnId::from_index(i);
        }
    }

    /// Removes a block and every connection touching it (Designer edit
    /// operation). Later block ids shift down by one.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn remove_block(&mut self, id: BlockId) {
        self.blocks.remove(id.index());
        self.connections
            .retain(|c| c.from.block != id && c.to.block != id);
        for c in self.connections.iter_mut() {
            if c.from.block > id {
                c.from.block = BlockId::from_index(c.from.block.index() - 1);
            }
            if c.to.block > id {
                c.to.block = BlockId::from_index(c.to.block.index() - 1);
            }
        }
        for (i, c) in self.connections.iter_mut().enumerate() {
            c.id = ConnId::from_index(i);
        }
    }

    /// The port at an endpoint, if the endpoint is in range.
    pub fn port_at(&self, ep: Endpoint) -> Option<&Port> {
        self.blocks.get(ep.block.index())?.ports.get(ep.port)
    }

    /// The first connection feeding input endpoint `to`, if any.
    pub fn incoming(&self, to: Endpoint) -> Option<&Connection> {
        self.connections.iter().find(|c| c.to == to)
    }

    /// All connections feeding input endpoint `to`, in insertion order
    /// (fan-in is structurally allowed; the race pass decides safety).
    pub fn incomings(&self, to: Endpoint) -> Vec<&Connection> {
        self.connections.iter().filter(|c| c.to == to).collect()
    }

    /// All connections leaving output endpoint `from` (fan-out is allowed).
    pub fn outgoing(&self, from: Endpoint) -> Vec<&Connection> {
        self.connections.iter().filter(|c| c.from == from).collect()
    }

    /// Topologically sorts the blocks (Kahn's algorithm).
    ///
    /// Returns [`ModelError::Cycle`] if the dataflow graph has a cycle; SAGE
    /// models are acyclic per iteration (feedback crosses iteration
    /// boundaries, which the runtime handles through the source).
    pub fn toposort(&self) -> Result<Vec<BlockId>, ModelError> {
        self.kahn(false)
    }

    /// [`AppGraph::toposort`] with feedback arcs relaxed: a connection
    /// leaving a block whose [`Block::delay`] is nonzero does not constrain
    /// the order, because its payload crosses the iteration boundary (the
    /// consumer of iteration `i` reads what the delayed block produced on
    /// iteration `i - delay`). Returns [`ModelError::Cycle`] only for
    /// cycles no delay element breaks — those can never be scheduled.
    pub fn toposort_feedback(&self) -> Result<Vec<BlockId>, ModelError> {
        self.kahn(true)
    }

    fn kahn(&self, relax_feedback: bool) -> Result<Vec<BlockId>, ModelError> {
        let n = self.blocks.len();
        let mut indeg = vec![0usize; n];
        let mut succ: Vec<Vec<usize>> = vec![Vec::new(); n];
        for c in &self.connections {
            if relax_feedback && self.blocks[c.from.block.index()].delay() > 0 {
                continue;
            }
            // Parallel edges between the same pair are fine for Kahn as long
            // as each contributes to the in-degree.
            succ[c.from.block.index()].push(c.to.block.index());
            indeg[c.to.block.index()] += 1;
        }
        let mut ready: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        // Keep deterministic order: lowest index first.
        ready.sort_unstable_by(|a, b| b.cmp(a));
        let mut order = Vec::with_capacity(n);
        while let Some(i) = ready.pop() {
            order.push(BlockId::from_index(i));
            for &s in &succ[i] {
                indeg[s] -= 1;
                if indeg[s] == 0 {
                    ready.push(s);
                }
            }
            ready.sort_unstable_by(|a, b| b.cmp(a));
        }
        if order.len() != n {
            Err(ModelError::Cycle)
        } else {
            Ok(order)
        }
    }

    /// Expands all hierarchical blocks into a flat graph of leaves.
    ///
    /// Nested block instances are renamed `parent.child`. A hierarchical
    /// block's boundary port binds to the unique same-named, same-direction,
    /// internally-unconnected port inside its (already flattened) subgraph.
    pub fn flatten(&self) -> Result<AppGraph, ModelError> {
        enum Lowered {
            Leaf(BlockId),
            Hier(HashMap<(Direction, String), Endpoint>),
        }

        let mut out = AppGraph::new(self.name.clone());
        out.props = self.props.clone();
        let mut lowered: Vec<Lowered> = Vec::with_capacity(self.blocks.len());

        for b in &self.blocks {
            match &b.kind {
                BlockKind::Hierarchical { subgraph } => {
                    let flat = subgraph.flatten()?;
                    // Inline blocks with prefixed names.
                    let base = out.blocks.len();
                    for sb in flat.blocks() {
                        let mut nb = sb.clone();
                        nb.name = format!("{}.{}", b.name, sb.name);
                        out.add_block(nb);
                    }
                    // Inline internal connections.
                    for c in flat.connections() {
                        out.connect_endpoints(
                            Endpoint {
                                block: BlockId::from_index(base + c.from.block.index()),
                                port: c.from.port,
                            },
                            Endpoint {
                                block: BlockId::from_index(base + c.to.block.index()),
                                port: c.to.port,
                            },
                        )?;
                    }
                    // Resolve boundary ports.
                    let mut bound = HashMap::new();
                    for port in &b.ports {
                        let mut matches = Vec::new();
                        for (bi, sb) in flat.blocks().iter().enumerate() {
                            for (pi, sp) in sb.ports.iter().enumerate() {
                                if sp.name != port.name || sp.direction != port.direction {
                                    continue;
                                }
                                let ep = Endpoint {
                                    block: BlockId::from_index(bi),
                                    port: pi,
                                };
                                let connected = match sp.direction {
                                    Direction::In => flat.incoming(ep).is_some(),
                                    Direction::Out => !flat.outgoing(ep).is_empty(),
                                };
                                if !connected {
                                    matches.push(Endpoint {
                                        block: BlockId::from_index(base + bi),
                                        port: pi,
                                    });
                                }
                            }
                        }
                        match matches.len() {
                            1 => {
                                bound.insert((port.direction, port.name.clone()), matches[0]);
                            }
                            0 => {
                                return Err(ModelError::UnboundBoundary {
                                    block: b.name.clone(),
                                    port: port.name.clone(),
                                })
                            }
                            _ => {
                                return Err(ModelError::AmbiguousBoundary {
                                    block: b.name.clone(),
                                    port: port.name.clone(),
                                })
                            }
                        }
                    }
                    lowered.push(Lowered::Hier(bound));
                }
                _ => {
                    let id = out.add_block(b.clone());
                    lowered.push(Lowered::Leaf(id));
                }
            }
        }

        // Rewrite the outer connections through the lowering map.
        for c in &self.connections {
            let resolve = |ep: Endpoint, dir: Direction| -> Result<Endpoint, ModelError> {
                match &lowered[ep.block.index()] {
                    Lowered::Leaf(id) => Ok(Endpoint {
                        block: *id,
                        port: ep.port,
                    }),
                    Lowered::Hier(bound) => {
                        let pname = self.blocks[ep.block.index()].ports[ep.port].name.clone();
                        bound.get(&(dir, pname.clone())).copied().ok_or(
                            ModelError::UnboundBoundary {
                                block: self.blocks[ep.block.index()].name.clone(),
                                port: pname,
                            },
                        )
                    }
                }
            };
            let from = resolve(c.from, Direction::Out)?;
            let to = resolve(c.to, Direction::In)?;
            out.connect_endpoints(from, to)?;
        }
        Ok(out)
    }

    /// The ids of all primitive (leaf computation) blocks, in instance order.
    pub fn primitive_ids(&self) -> Vec<BlockId> {
        self.blocks
            .iter()
            .enumerate()
            .filter(|(_, b)| b.is_primitive())
            .map(|(i, _)| BlockId::from_index(i))
            .collect()
    }

    /// Total bytes flowing along connection `c` per iteration.
    pub fn connection_bytes(&self, c: &Connection) -> usize {
        self.port_at(c.from)
            .map(|p| p.data_type.size_bytes())
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::CostModel;
    use crate::datatype::DataType;
    use crate::port::Striping;

    fn leaf(name: &str, ins: &[&str], outs: &[&str]) -> Block {
        let mut ports = Vec::new();
        for i in ins {
            ports.push(Port::input(*i, DataType::Complex, Striping::Replicated));
        }
        for o in outs {
            ports.push(Port::output(*o, DataType::Complex, Striping::Replicated));
        }
        Block::primitive(name, "id", 1, CostModel::ZERO, ports)
    }

    fn chain3() -> (AppGraph, BlockId, BlockId, BlockId) {
        let mut g = AppGraph::new("chain");
        let a = g.add_block(leaf("a", &[], &["out"]));
        let b = g.add_block(leaf("b", &["in"], &["out"]));
        let c = g.add_block(leaf("c", &["in"], &[]));
        g.connect(a, "out", b, "in").unwrap();
        g.connect(b, "out", c, "in").unwrap();
        (g, a, b, c)
    }

    #[test]
    fn connect_and_lookup() {
        let (g, a, b, _) = chain3();
        assert_eq!(g.connections().len(), 2);
        let ep = Endpoint { block: b, port: 0 };
        assert_eq!(g.incoming(ep).unwrap().from.block, a);
        assert_eq!(g.block_by_name("b"), Some(b));
        assert_eq!(g.block_by_name("zzz"), None);
    }

    #[test]
    fn fan_out_and_fan_in_both_allowed() {
        let mut g = AppGraph::new("g");
        let a = g.add_block(leaf("a", &[], &["out"]));
        let b = g.add_block(leaf("b", &[], &["out"]));
        let c = g.add_block(leaf("c", &["in"], &[]));
        let d = g.add_block(leaf("d", &["in"], &[]));
        g.connect(a, "out", c, "in").unwrap();
        g.connect(a, "out", d, "in").unwrap(); // fan-out ok
                                               // Fan-in is structurally legal too; the race pass judges safety.
        g.connect(b, "out", c, "in").unwrap();
        let ep = Endpoint { block: c, port: 0 };
        let ins = g.incomings(ep);
        assert_eq!(ins.len(), 2);
        assert_eq!(ins[0].from.block, a);
        assert_eq!(ins[1].from.block, b);
        // `incoming` still reports the first arc for single-writer callers.
        assert_eq!(g.incoming(ep).unwrap().from.block, a);
    }

    #[test]
    fn type_mismatch_rejected() {
        let mut g = AppGraph::new("g");
        let a = g.add_block(Block::source(
            "a",
            vec![Port::output(
                "out",
                DataType::complex_matrix(4, 4),
                Striping::Replicated,
            )],
        ));
        let b = g.add_block(leaf("b", &["in"], &[]));
        let err = g.connect(a, "out", b, "in").unwrap_err();
        assert!(matches!(err, ModelError::TypeMismatch { .. }));
    }

    #[test]
    fn missing_port_rejected() {
        let mut g = AppGraph::new("g");
        let a = g.add_block(leaf("a", &[], &["out"]));
        let b = g.add_block(leaf("b", &["in"], &[]));
        assert!(matches!(
            g.connect(a, "nope", b, "in"),
            Err(ModelError::NoSuchPort { .. })
        ));
    }

    #[test]
    fn toposort_linear_chain() {
        let (g, a, b, c) = chain3();
        assert_eq!(g.toposort().unwrap(), vec![a, b, c]);
    }

    #[test]
    fn toposort_detects_cycle() {
        let mut g = AppGraph::new("g");
        let a = g.add_block(leaf("a", &["in"], &["out"]));
        let b = g.add_block(leaf("b", &["in"], &["out"]));
        g.connect(a, "out", b, "in").unwrap();
        g.connect(b, "out", a, "in").unwrap();
        assert!(matches!(g.toposort(), Err(ModelError::Cycle)));
    }

    #[test]
    fn toposort_feedback_relaxes_delay_cycles() {
        let mut g = AppGraph::new("g");
        let a = g.add_block(leaf("a", &["in"], &["out"]));
        let d =
            g.add_block(leaf("d", &["in"], &["out"]).with_prop("delay", crate::PropValue::Int(1)));
        g.connect(a, "out", d, "in").unwrap();
        g.connect(d, "out", a, "in").unwrap();
        // The plain sort still rejects the cycle; the feedback-aware sort
        // drops the arc leaving the delayed block and orders a before d.
        assert!(matches!(g.toposort(), Err(ModelError::Cycle)));
        assert_eq!(g.toposort_feedback().unwrap(), vec![a, d]);
        // An explicit delay of 0 does not break the cycle.
        g.block_mut(d)
            .props
            .insert("delay".into(), crate::PropValue::Int(0));
        assert!(matches!(g.toposort_feedback(), Err(ModelError::Cycle)));
    }

    #[test]
    fn toposort_is_deterministic_diamond() {
        let mut g = AppGraph::new("g");
        let s = g.add_block(leaf("s", &[], &["out"]));
        let x = g.add_block(leaf("x", &["in"], &["out"]));
        let y = g.add_block(leaf("y", &["in"], &["out"]));
        let t = g.add_block(leaf("t", &["in"], &["in2"]));
        // t has two inputs; reuse helper by adding a second input port manually.
        g.block_mut(t).ports[1] = Port::input("in2", DataType::Complex, Striping::Replicated);
        g.connect(s, "out", x, "in").unwrap();
        g.connect(s, "out", y, "in").unwrap();
        g.connect(x, "out", t, "in").unwrap();
        g.connect(y, "out", t, "in2").unwrap();
        assert_eq!(g.toposort().unwrap(), vec![s, x, y, t]);
    }

    #[test]
    fn flatten_inlines_subgraph() {
        // inner: f -> g  with free ports "in" (on f) and "out" (on g)
        let mut inner = AppGraph::new("inner");
        let f = inner.add_block(leaf("f", &["in"], &["mid"]));
        let gg = inner.add_block(leaf("g", &["mid_in"], &["out"]));
        inner.connect(f, "mid", gg, "mid_in").unwrap();

        let mut outer = AppGraph::new("outer");
        let src = outer.add_block(leaf("src", &[], &["out"]));
        let hier = outer.add_block(Block::hierarchical(
            "stage",
            inner,
            vec![
                Port::input("in", DataType::Complex, Striping::Replicated),
                Port::output("out", DataType::Complex, Striping::Replicated),
            ],
        ));
        let snk = outer.add_block(leaf("snk", &["in"], &[]));
        outer.connect(src, "out", hier, "in").unwrap();
        outer.connect(hier, "out", snk, "in").unwrap();

        let flat = outer.flatten().unwrap();
        assert_eq!(flat.block_count(), 4);
        let names: Vec<&str> = flat.blocks().iter().map(|b| b.name.as_str()).collect();
        assert!(names.contains(&"stage.f") && names.contains(&"stage.g"));
        assert_eq!(flat.connections().len(), 3);
        // The chain src -> stage.f -> stage.g -> snk must topo-sort.
        let order = flat.toposort().unwrap();
        assert_eq!(order.len(), 4);
        let _ = hier; // silence unused in release config
    }

    #[test]
    fn flatten_detects_unbound_boundary() {
        let inner = AppGraph::new("inner"); // empty: nothing to bind to
        let mut outer = AppGraph::new("outer");
        let src = outer.add_block(leaf("src", &[], &["out"]));
        let hier = outer.add_block(Block::hierarchical(
            "stage",
            inner,
            vec![Port::input("in", DataType::Complex, Striping::Replicated)],
        ));
        outer.connect(src, "out", hier, "in").unwrap();
        assert!(matches!(
            outer.flatten(),
            Err(ModelError::UnboundBoundary { .. })
        ));
    }

    #[test]
    fn flatten_nested_two_levels() {
        let mut level2 = AppGraph::new("l2");
        level2.add_block(leaf("core", &["in"], &["out"]));

        let mut level1 = AppGraph::new("l1");
        level1.add_block(Block::hierarchical(
            "wrap",
            level2,
            vec![
                Port::input("in", DataType::Complex, Striping::Replicated),
                Port::output("out", DataType::Complex, Striping::Replicated),
            ],
        ));

        let mut top = AppGraph::new("top");
        let s = top.add_block(leaf("s", &[], &["out"]));
        let h = top.add_block(Block::hierarchical(
            "outerwrap",
            level1,
            vec![
                Port::input("in", DataType::Complex, Striping::Replicated),
                Port::output("out", DataType::Complex, Striping::Replicated),
            ],
        ));
        let t = top.add_block(leaf("t", &["in"], &[]));
        top.connect(s, "out", h, "in").unwrap();
        top.connect(h, "out", t, "in").unwrap();
        let flat = top.flatten().unwrap();
        let names: Vec<&str> = flat.blocks().iter().map(|b| b.name.as_str()).collect();
        assert!(names.contains(&"outerwrap.wrap.core"), "{names:?}");
        assert_eq!(flat.connections().len(), 2);
    }

    #[test]
    fn disconnect_rekeys_ids() {
        let (mut g, _, _, _) = chain3();
        g.disconnect(ConnId(0));
        assert_eq!(g.connections().len(), 1);
        assert_eq!(g.connections()[0].id, ConnId(0));
        // The remaining arc is b -> c.
        assert_eq!(g.connections()[0].from.block, BlockId(1));
    }

    #[test]
    fn remove_block_drops_its_connections_and_shifts_ids() {
        let (mut g, _, b, _) = chain3();
        g.remove_block(b);
        assert_eq!(g.block_count(), 2);
        assert!(g.connections().is_empty());
        assert_eq!(g.block_by_name("c"), Some(BlockId(1)));
        // Reconnect the survivors: a -> c must still work.
        let a = g.block_by_name("a").unwrap();
        let c = g.block_by_name("c").unwrap();
        g.connect(a, "out", c, "in").unwrap();
        assert_eq!(g.toposort().unwrap(), vec![a, c]);
    }

    #[test]
    fn remove_middle_block_preserves_other_edges() {
        let mut g = AppGraph::new("g");
        let a = g.add_block(leaf("a", &[], &["out"]));
        let b = g.add_block(leaf("b", &[], &["out"]));
        let c = g.add_block(leaf("c", &["in"], &[]));
        let d = g.add_block(leaf("d", &["in"], &[]));
        g.connect(a, "out", c, "in").unwrap();
        g.connect(b, "out", d, "in").unwrap();
        g.remove_block(b); // kills b -> d only
        assert_eq!(g.connections().len(), 1);
        let conn = &g.connections()[0];
        assert_eq!(g.blocks()[conn.from.block.index()].name, "a");
        assert_eq!(g.blocks()[conn.to.block.index()].name, "c");
        let _ = d;
    }

    #[test]
    fn connection_bytes_uses_port_type() {
        let mut g = AppGraph::new("g");
        let a = g.add_block(Block::source(
            "a",
            vec![Port::output(
                "out",
                DataType::complex_matrix(16, 16),
                Striping::Replicated,
            )],
        ));
        let b = g.add_block(Block::sink(
            "b",
            vec![Port::input(
                "in",
                DataType::complex_matrix(16, 16),
                Striping::Replicated,
            )],
        ));
        g.connect(a, "out", b, "in").unwrap();
        assert_eq!(g.connection_bytes(&g.connections()[0]), 16 * 16 * 8);
    }
}
