//! The **data type editor**: data types exchanged over data-flow arcs.
//!
//! In SAGE the data type editor "is used to define the various data types and
//! striping and parallelization relationships for the different functions".
//! The type determines the byte size of logical buffers; the striping
//! relationship lives on the ports ([`crate::port::Striping`]) and is
//! interpreted against the type's shape.

use std::fmt;

/// Primitive scalar kinds.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ScalarKind {
    /// 32-bit IEEE float.
    F32,
    /// 64-bit IEEE float.
    F64,
    /// 32-bit signed integer.
    I32,
    /// 16-bit signed integer (common in sensor front-ends).
    I16,
    /// 8-bit unsigned integer.
    U8,
}

impl ScalarKind {
    /// Size in bytes.
    pub fn size_bytes(self) -> usize {
        match self {
            ScalarKind::F32 | ScalarKind::I32 => 4,
            ScalarKind::F64 => 8,
            ScalarKind::I16 => 2,
            ScalarKind::U8 => 1,
        }
    }
}

/// A data type definable in the data type editor.
#[derive(Clone, Debug, PartialEq)]
pub enum DataType {
    /// A primitive scalar.
    Scalar(ScalarKind),
    /// A single-precision complex sample (the benchmark element type).
    Complex,
    /// A dense multi-dimensional array of an element type; `shape` is
    /// outermost-first (e.g. `[rows, cols]` for a row-major matrix).
    Array {
        /// Element type.
        elem: Box<DataType>,
        /// Extent of each dimension, outermost first.
        shape: Vec<usize>,
    },
    /// A named record of fields (message headers, detection reports, ...).
    Record(Vec<(String, DataType)>),
}

impl DataType {
    /// Convenience constructor: a `rows x cols` complex matrix.
    pub fn complex_matrix(rows: usize, cols: usize) -> DataType {
        DataType::Array {
            elem: Box::new(DataType::Complex),
            shape: vec![rows, cols],
        }
    }

    /// Convenience constructor: a length-`n` complex vector.
    pub fn complex_vector(n: usize) -> DataType {
        DataType::Array {
            elem: Box::new(DataType::Complex),
            shape: vec![n],
        }
    }

    /// Total size in bytes (packed layout, no padding).
    pub fn size_bytes(&self) -> usize {
        match self {
            DataType::Scalar(k) => k.size_bytes(),
            DataType::Complex => 8,
            DataType::Array { elem, shape } => elem.size_bytes() * shape.iter().product::<usize>(),
            DataType::Record(fields) => fields.iter().map(|(_, t)| t.size_bytes()).sum(),
        }
    }

    /// Total number of leaf elements.
    pub fn element_count(&self) -> usize {
        match self {
            DataType::Scalar(_) | DataType::Complex => 1,
            DataType::Array { elem, shape } => {
                elem.element_count() * shape.iter().product::<usize>()
            }
            DataType::Record(fields) => fields.iter().map(|(_, t)| t.element_count()).sum(),
        }
    }

    /// The array shape if this is an array type.
    pub fn shape(&self) -> Option<&[usize]> {
        match self {
            DataType::Array { shape, .. } => Some(shape),
            _ => None,
        }
    }

    /// Extent of dimension `dim` (arrays only).
    pub fn dim(&self, dim: usize) -> Option<usize> {
        self.shape().and_then(|s| s.get(dim).copied())
    }

    /// Whether a striped distribution along `dim` into `parts` even pieces is
    /// well-defined for this type: the type must be an array, the dimension
    /// must exist, and the extent must divide evenly.
    ///
    /// This is the model-level check the Designer performs before accepting a
    /// striped connection; the runtime re-checks at buffer-build time.
    pub fn stripeable(&self, dim: usize, parts: usize) -> bool {
        if parts == 0 {
            return false;
        }
        match self.dim(dim) {
            Some(extent) => extent % parts == 0,
            None => false,
        }
    }

    /// Size in bytes of one stripe when split along `dim` into `parts`.
    ///
    /// # Panics
    /// Panics if [`DataType::stripeable`] is false for these arguments.
    pub fn stripe_bytes(&self, dim: usize, parts: usize) -> usize {
        assert!(
            self.stripeable(dim, parts),
            "{self:?} cannot be striped along dim {dim} into {parts} parts"
        );
        self.size_bytes() / parts
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Scalar(k) => write!(f, "{k:?}"),
            DataType::Complex => write!(f, "Complex32"),
            DataType::Array { elem, shape } => {
                write!(f, "{elem}[")?;
                for (i, d) in shape.iter().enumerate() {
                    if i > 0 {
                        write!(f, "x")?;
                    }
                    write!(f, "{d}")?;
                }
                write!(f, "]")
            }
            DataType::Record(fields) => {
                write!(f, "{{")?;
                for (i, (name, t)) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{name}: {t}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_sizes() {
        assert_eq!(DataType::Scalar(ScalarKind::F32).size_bytes(), 4);
        assert_eq!(DataType::Scalar(ScalarKind::F64).size_bytes(), 8);
        assert_eq!(DataType::Scalar(ScalarKind::I16).size_bytes(), 2);
        assert_eq!(DataType::Scalar(ScalarKind::U8).size_bytes(), 1);
        assert_eq!(DataType::Complex.size_bytes(), 8);
    }

    #[test]
    fn matrix_size_and_count() {
        let m = DataType::complex_matrix(1024, 1024);
        assert_eq!(m.size_bytes(), 1024 * 1024 * 8);
        assert_eq!(m.element_count(), 1024 * 1024);
        assert_eq!(m.shape(), Some(&[1024usize, 1024][..]));
    }

    #[test]
    fn record_size_is_sum() {
        let r = DataType::Record(vec![
            ("hdr".into(), DataType::Scalar(ScalarKind::I32)),
            ("payload".into(), DataType::complex_vector(4)),
        ]);
        assert_eq!(r.size_bytes(), 4 + 32);
        assert_eq!(r.element_count(), 5);
    }

    #[test]
    fn striping_rules() {
        let m = DataType::complex_matrix(8, 6);
        assert!(m.stripeable(0, 4)); // 8 rows / 4 parts
        assert!(m.stripeable(1, 3)); // 6 cols / 3 parts
        assert!(!m.stripeable(0, 3)); // 8 % 3 != 0
        assert!(!m.stripeable(2, 2)); // no dim 2
        assert!(!m.stripeable(0, 0));
        assert!(!DataType::Complex.stripeable(0, 2)); // scalars aren't arrays
        assert_eq!(m.stripe_bytes(0, 4), 8 * 6 * 8 / 4);
    }

    #[test]
    #[should_panic(expected = "cannot be striped")]
    fn stripe_bytes_rejects_uneven() {
        DataType::complex_matrix(7, 3).stripe_bytes(0, 2);
    }

    #[test]
    fn display_forms() {
        assert_eq!(DataType::complex_matrix(2, 3).to_string(), "Complex32[2x3]");
        assert_eq!(DataType::Scalar(ScalarKind::F32).to_string(), "F32");
    }
}
