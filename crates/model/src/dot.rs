//! Graphviz DOT export — the textual stand-in for the Designer's "graphical
//! view or model of the application".

use crate::block::BlockKind;
use crate::graph::AppGraph;
use std::fmt::Write;

/// Renders the application graph in DOT format.
///
/// Sources are house-shaped, sinks inverted-house, primitives boxes
/// (annotated with function name and thread count), hierarchical blocks
/// double-walled boxes. Edges are labelled with the carried data type.
pub fn to_dot(graph: &AppGraph) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "digraph \"{}\" {{", graph.name);
    let _ = writeln!(s, "  rankdir=LR;");
    for (i, b) in graph.blocks().iter().enumerate() {
        let (shape, label) = match &b.kind {
            BlockKind::Source { .. } => ("house".to_string(), b.name.clone()),
            BlockKind::Sink { .. } => ("invhouse".to_string(), b.name.clone()),
            BlockKind::Primitive {
                function, threads, ..
            } => (
                "box".to_string(),
                format!("{}\\n{function} x{threads}", b.name),
            ),
            BlockKind::Hierarchical { .. } => ("box3d".to_string(), b.name.clone()),
        };
        let _ = writeln!(s, "  n{i} [shape={shape}, label=\"{label}\"];");
    }
    for c in graph.connections() {
        let ty = graph
            .port_at(c.from)
            .map(|p| p.data_type.to_string())
            .unwrap_or_default();
        let _ = writeln!(
            s,
            "  n{} -> n{} [label=\"{}\"];",
            c.from.block.index(),
            c.to.block.index(),
            ty
        );
    }
    s.push_str("}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{Block, CostModel};
    use crate::datatype::DataType;
    use crate::port::{Port, Striping};

    #[test]
    fn dot_contains_nodes_and_edges() {
        let mut g = AppGraph::new("demo");
        let a = g.add_block(Block::source(
            "src",
            vec![Port::output("out", DataType::Complex, Striping::Replicated)],
        ));
        let b = g.add_block(Block::primitive(
            "fft",
            "isspl.fft",
            2,
            CostModel::ZERO,
            vec![
                Port::input("in", DataType::Complex, Striping::Replicated),
                Port::output("out", DataType::Complex, Striping::Replicated),
            ],
        ));
        g.connect(a, "out", b, "in").unwrap();
        let dot = to_dot(&g);
        assert!(dot.starts_with("digraph \"demo\""));
        assert!(dot.contains("n0 [shape=house"));
        assert!(dot.contains("isspl.fft x2"));
        assert!(dot.contains("n0 -> n1 [label=\"Complex32\"]"));
        assert!(dot.trim_end().ends_with('}'));
    }
}
