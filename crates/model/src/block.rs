//! Functional blocks: the vertices of the application editor's dataflow
//! graphs.
//!
//! Blocks are either *primitive* (bound to a shelf function executed by the
//! run-time), *sources*/*sinks* (the data entry/exit points used to define
//! the paper's period and latency measurements), or *hierarchical* (a nested
//! sub-graph, since the application editor builds "a graphical view or model
//! of the application by connecting functional or behavioral blocks
//! (hierarchical) in a data flow manner").

use crate::graph::AppGraph;
use crate::port::{Direction, Port};
use crate::{PropValue, Properties};

/// Estimated execution cost of one block invocation, taken from shelf
/// metadata (the paper's AToT derives task costs the same way).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostModel {
    /// Floating-point operations per invocation.
    pub flops: f64,
    /// Bytes of memory traffic per invocation.
    pub mem_bytes: f64,
}

impl CostModel {
    /// Zero cost (sources/sinks that only hand buffers over).
    pub const ZERO: CostModel = CostModel {
        flops: 0.0,
        mem_bytes: 0.0,
    };

    /// Creates a cost model.
    pub const fn new(flops: f64, mem_bytes: f64) -> Self {
        CostModel { flops, mem_bytes }
    }
}

/// The behavioural kind of a block.
#[derive(Clone, Debug, PartialEq)]
pub enum BlockKind {
    /// Produces an input data set each iteration ("the time from when the
    /// first data leaves the data source ..."). Multi-threaded sources model
    /// distributed data origins (one sensor stream per node).
    Source {
        /// Number of source threads.
        threads: usize,
    },
    /// Consumes the final result ("... to the time the final result is
    /// output to the data sink").
    Sink {
        /// Number of sink threads.
        threads: usize,
    },
    /// A leaf computation bound to a registered run-time function.
    Primitive {
        /// Name of the shelf function the run-time invokes.
        function: String,
        /// Number of threads of the host function (drives striping).
        threads: usize,
        /// Shelf cost model for AToT and virtual-time charging.
        cost: CostModel,
    },
    /// A nested sub-graph. Boundary ports of the hierarchical block map 1:1
    /// by name onto ports of unconnected blocks inside the sub-graph.
    Hierarchical {
        /// The nested application graph.
        subgraph: Box<AppGraph>,
    },
}

/// A functional block instance.
#[derive(Clone, Debug, PartialEq)]
pub struct Block {
    /// Instance name (unique within its graph).
    pub name: String,
    /// Behavioural kind.
    pub kind: BlockKind,
    /// Ports in declaration order.
    pub ports: Vec<Port>,
    /// Free-form attributes readable from Alter.
    pub props: Properties,
}

impl Block {
    /// Creates a single-threaded source block with the given output ports.
    pub fn source(name: impl Into<String>, ports: Vec<Port>) -> Block {
        Block::source_threaded(name, 1, ports)
    }

    /// Creates a source block whose data originates distributed over
    /// `threads` threads.
    pub fn source_threaded(name: impl Into<String>, threads: usize, ports: Vec<Port>) -> Block {
        Block {
            name: name.into(),
            kind: BlockKind::Source { threads },
            ports,
            props: Properties::new(),
        }
    }

    /// Creates a single-threaded sink block with the given input ports.
    pub fn sink(name: impl Into<String>, ports: Vec<Port>) -> Block {
        Block::sink_threaded(name, 1, ports)
    }

    /// Creates a sink block that absorbs results distributed over `threads`
    /// threads.
    pub fn sink_threaded(name: impl Into<String>, threads: usize, ports: Vec<Port>) -> Block {
        Block {
            name: name.into(),
            kind: BlockKind::Sink { threads },
            ports,
            props: Properties::new(),
        }
    }

    /// Creates a primitive block bound to shelf function `function`.
    pub fn primitive(
        name: impl Into<String>,
        function: impl Into<String>,
        threads: usize,
        cost: CostModel,
        ports: Vec<Port>,
    ) -> Block {
        Block {
            name: name.into(),
            kind: BlockKind::Primitive {
                function: function.into(),
                threads,
                cost,
            },
            ports,
            props: Properties::new(),
        }
    }

    /// Creates a hierarchical block wrapping `subgraph`.
    pub fn hierarchical(name: impl Into<String>, subgraph: AppGraph, ports: Vec<Port>) -> Block {
        Block {
            name: name.into(),
            kind: BlockKind::Hierarchical {
                subgraph: Box::new(subgraph),
            },
            ports,
            props: Properties::new(),
        }
    }

    /// Builder-style property attachment.
    pub fn with_prop(mut self, key: impl Into<String>, value: PropValue) -> Block {
        self.props.insert(key.into(), value);
        self
    }

    /// Number of threads the block's function runs with (1 for non-primitives).
    pub fn threads(&self) -> usize {
        match &self.kind {
            BlockKind::Primitive { threads, .. }
            | BlockKind::Source { threads }
            | BlockKind::Sink { threads } => *threads,
            BlockKind::Hierarchical { .. } => 1,
        }
    }

    /// Cost per invocation (zero for non-primitives; hierarchical blocks are
    /// flattened before costing).
    pub fn cost(&self) -> CostModel {
        match &self.kind {
            BlockKind::Primitive { cost, .. } => *cost,
            _ => CostModel::ZERO,
        }
    }

    /// Iterator over input ports, in declaration order.
    pub fn inputs(&self) -> impl Iterator<Item = (usize, &Port)> {
        self.ports
            .iter()
            .enumerate()
            .filter(|(_, p)| p.direction == Direction::In)
    }

    /// Iterator over output ports, in declaration order.
    pub fn outputs(&self) -> impl Iterator<Item = (usize, &Port)> {
        self.ports
            .iter()
            .enumerate()
            .filter(|(_, p)| p.direction == Direction::Out)
    }

    /// Finds a port index by name and direction.
    pub fn port_index(&self, name: &str, direction: Direction) -> Option<usize> {
        self.ports
            .iter()
            .position(|p| p.name == name && p.direction == direction)
    }

    /// The block's iteration delay: its integer `delay` property, clamped
    /// at 0 (absent or non-integer properties count as no delay). Arcs
    /// leaving a delayed block carry the payload the block produced `delay`
    /// iterations earlier, which is how feedback crosses the iteration
    /// boundary.
    pub fn delay(&self) -> u32 {
        match self.props.get("delay") {
            Some(PropValue::Int(i)) => (*i).max(0) as u32,
            _ => 0,
        }
    }

    /// `true` if the block is a plain computation leaf.
    pub fn is_primitive(&self) -> bool {
        matches!(self.kind, BlockKind::Primitive { .. })
    }

    /// `true` for hierarchical blocks.
    pub fn is_hierarchical(&self) -> bool {
        matches!(self.kind, BlockKind::Hierarchical { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datatype::DataType;
    use crate::port::Striping;

    fn p_in(name: &str) -> Port {
        Port::input(name, DataType::Complex, Striping::Replicated)
    }

    fn p_out(name: &str) -> Port {
        Port::output(name, DataType::Complex, Striping::Replicated)
    }

    #[test]
    fn primitive_metadata() {
        let b = Block::primitive(
            "fft",
            "isspl.fft_rows",
            4,
            CostModel::new(100.0, 200.0),
            vec![p_in("in"), p_out("out")],
        );
        assert!(b.is_primitive());
        assert_eq!(b.threads(), 4);
        assert_eq!(b.cost().flops, 100.0);
        assert_eq!(b.inputs().count(), 1);
        assert_eq!(b.outputs().count(), 1);
    }

    #[test]
    fn source_sink_have_zero_cost_and_one_thread() {
        let s = Block::source("src", vec![p_out("out")]);
        assert_eq!(s.threads(), 1);
        assert_eq!(s.cost(), CostModel::ZERO);
        let k = Block::sink("snk", vec![p_in("in")]);
        assert!(!k.is_primitive());
    }

    #[test]
    fn port_lookup_respects_direction() {
        let b = Block::primitive("f", "id", 1, CostModel::ZERO, vec![p_in("x"), p_out("x")]);
        assert_eq!(b.port_index("x", Direction::In), Some(0));
        assert_eq!(b.port_index("x", Direction::Out), Some(1));
        assert_eq!(b.port_index("y", Direction::In), None);
    }

    #[test]
    fn props_builder() {
        let b = Block::source("s", vec![]).with_prop("rate_hz", PropValue::Float(100.0));
        assert_eq!(b.props.get("rate_hz"), Some(&PropValue::Float(100.0)));
    }
}
