//! Software and hardware **shelves**: reusable component libraries.
//!
//! Paper §1.1: "All primitive and hierarchical blocks are stored on software
//! and hardware shelves for later reuse. Items on the hardware shelf include
//! workstations, other embedded computers, CPU chips, memory, ASICs, FPGAs,
//! etc." and §3.2: porting SAGE to a platform means "capturing of all
//! knowledge associated with programming to the CSPI hardware ... the ISSPL
//! function libraries on to the appropriate shelves".

use crate::block::CostModel;
use crate::hardware::{FabricSpec, HardwareSpec, Processor};
use std::collections::BTreeMap;

/// A shelf entry describing a reusable library function and its measured
/// per-target cost characteristics.
#[derive(Clone, Debug, PartialEq)]
pub struct ShelfFunction {
    /// Registry name, e.g. `"isspl.fft_rows"` — the string the run-time's
    /// function registry resolves.
    pub name: String,
    /// Human description shown in the Designer.
    pub description: String,
    /// Cost per invocation, keyed by target platform name; the key `"*"` is
    /// the portable default.
    pub costs: BTreeMap<String, CostModel>,
}

impl ShelfFunction {
    /// Creates an entry with a portable default cost.
    pub fn new(
        name: impl Into<String>,
        description: impl Into<String>,
        default_cost: CostModel,
    ) -> ShelfFunction {
        let mut costs = BTreeMap::new();
        costs.insert("*".to_string(), default_cost);
        ShelfFunction {
            name: name.into(),
            description: description.into(),
            costs,
        }
    }

    /// Adds a target-specific measured cost (hand-tuned library variants).
    pub fn with_target_cost(mut self, target: impl Into<String>, cost: CostModel) -> Self {
        self.costs.insert(target.into(), cost);
        self
    }

    /// The cost on `target`, falling back to the portable default.
    pub fn cost_on(&self, target: &str) -> CostModel {
        self.costs
            .get(target)
            .or_else(|| self.costs.get("*"))
            .copied()
            .unwrap_or(CostModel::ZERO)
    }
}

/// The software shelf: a name-indexed library of functions.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SoftwareShelf {
    entries: BTreeMap<String, ShelfFunction>,
}

impl SoftwareShelf {
    /// Creates an empty shelf.
    pub fn new() -> SoftwareShelf {
        SoftwareShelf::default()
    }

    /// Adds or replaces an entry.
    pub fn add(&mut self, f: ShelfFunction) {
        self.entries.insert(f.name.clone(), f);
    }

    /// Looks up an entry by registry name.
    pub fn get(&self, name: &str) -> Option<&ShelfFunction> {
        self.entries.get(name)
    }

    /// All entries in name order.
    pub fn iter(&self) -> impl Iterator<Item = &ShelfFunction> {
        self.entries.values()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if the shelf has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// The hardware shelf: named, parameterized platform templates.
///
/// The four presets model the vendors of the paper's MITRE cross-vendor
/// comparison (reference [2]). Parameters are plausible late-1990s values
/// chosen to reproduce the comparison's *shape*; see `EXPERIMENTS.md`.
#[derive(Clone, Debug, Default)]
pub struct HardwareShelf;

impl HardwareShelf {
    /// The paper's testbed: two quad-PowerPC-603e (200 MHz) boards behind a
    /// 160 MB/s Myrinet fabric, in one VME chassis.
    pub fn cspi_testbed() -> HardwareSpec {
        Self::cspi_with_nodes(8)
    }

    /// A CSPI-style machine with `nodes` processors (4 per board).
    pub fn cspi_with_nodes(nodes: usize) -> HardwareSpec {
        let proc = Processor {
            name: "PowerPC 603e".into(),
            clock_mhz: 200.0,
            flops_per_cycle: 1.0,
            mem_mb: 64.0,
            mem_bw_mbps: 640.0,
        };
        let myrinet = FabricSpec {
            bandwidth_mbps: 160.0,
            latency_us: 20.0,
        };
        Self::packed("CSPI", proc, nodes, 4, myrinet, myrinet)
    }

    /// A Mercury-style machine: faster RACEway-like fabric, PowerPC nodes.
    pub fn mercury_with_nodes(nodes: usize) -> HardwareSpec {
        let proc = Processor {
            name: "PowerPC 750".into(),
            clock_mhz: 366.0,
            flops_per_cycle: 1.0,
            mem_mb: 64.0,
            mem_bw_mbps: 900.0,
        };
        let race = FabricSpec {
            bandwidth_mbps: 267.0,
            latency_us: 8.0,
        };
        Self::packed("Mercury", proc, nodes, 4, race, race)
    }

    /// A SKY-style machine: SHARC-like DSP nodes, moderate fabric.
    pub fn sky_with_nodes(nodes: usize) -> HardwareSpec {
        let proc = Processor {
            name: "SKY PPC".into(),
            clock_mhz: 300.0,
            flops_per_cycle: 1.0,
            mem_mb: 64.0,
            mem_bw_mbps: 800.0,
        };
        let fabric = FabricSpec {
            bandwidth_mbps: 200.0,
            latency_us: 12.0,
        };
        Self::packed("SKY", proc, nodes, 4, fabric, fabric)
    }

    /// A SIGI-style machine: slower nodes, slower shared bus.
    pub fn sigi_with_nodes(nodes: usize) -> HardwareSpec {
        let proc = Processor {
            name: "SIGI PPC".into(),
            clock_mhz: 166.0,
            flops_per_cycle: 1.0,
            mem_mb: 32.0,
            mem_bw_mbps: 500.0,
        };
        let fabric = FabricSpec {
            bandwidth_mbps: 100.0,
            latency_us: 30.0,
        };
        Self::packed("SIGI", proc, nodes, 4, fabric, fabric)
    }

    /// Builds a platform by name (`"CSPI"`, `"Mercury"`, `"SKY"`, `"SIGI"`).
    pub fn by_name(name: &str, nodes: usize) -> Option<HardwareSpec> {
        match name {
            "CSPI" => Some(Self::cspi_with_nodes(nodes)),
            "Mercury" => Some(Self::mercury_with_nodes(nodes)),
            "SKY" => Some(Self::sky_with_nodes(nodes)),
            "SIGI" => Some(Self::sigi_with_nodes(nodes)),
            _ => None,
        }
    }

    fn packed(
        name: &str,
        proc: Processor,
        nodes: usize,
        per_board: usize,
        intra: FabricSpec,
        fabric: FabricSpec,
    ) -> HardwareSpec {
        assert!(nodes > 0);
        let full_boards = nodes / per_board;
        let rem = nodes % per_board;
        let mut hw = HardwareSpec::homogeneous(
            name,
            proc.clone(),
            full_boards.max(if rem > 0 || full_boards == 0 {
                0
            } else {
                full_boards
            }),
            per_board,
            intra,
            fabric,
        );
        // `homogeneous` built the full boards; append the partial board.
        if full_boards == 0 {
            hw.chassis[0].boards.clear();
        } else {
            hw.chassis[0].boards.truncate(full_boards);
        }
        if rem > 0 {
            hw.chassis[0].boards.push(crate::hardware::Board {
                name: format!("board{full_boards}"),
                processors: vec![proc; rem],
                intra,
            });
        }
        hw
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shelf_function_cost_fallback() {
        let f = ShelfFunction::new("isspl.fft_rows", "row FFTs", CostModel::new(10.0, 20.0))
            .with_target_cost("CSPI", CostModel::new(8.0, 16.0));
        assert_eq!(f.cost_on("CSPI").flops, 8.0);
        assert_eq!(f.cost_on("Mercury").flops, 10.0);
    }

    #[test]
    fn software_shelf_lookup() {
        let mut shelf = SoftwareShelf::new();
        assert!(shelf.is_empty());
        shelf.add(ShelfFunction::new("a", "", CostModel::ZERO));
        shelf.add(ShelfFunction::new("b", "", CostModel::ZERO));
        assert_eq!(shelf.len(), 2);
        assert!(shelf.get("a").is_some());
        assert!(shelf.get("c").is_none());
    }

    #[test]
    fn cspi_testbed_matches_paper() {
        let hw = HardwareShelf::cspi_testbed();
        assert_eq!(hw.node_count(), 8);
        assert_eq!(hw.chassis[0].boards.len(), 2);
        assert_eq!(hw.chassis[0].fabric.bandwidth_mbps, 160.0);
        let flat = hw.flatten();
        assert_eq!(flat[0].proc.clock_mhz, 200.0);
    }

    #[test]
    fn node_counts_pack_onto_boards() {
        for n in [1usize, 2, 3, 4, 5, 8, 16] {
            let hw = HardwareShelf::cspi_with_nodes(n);
            assert_eq!(hw.node_count(), n, "n={n}");
        }
        // 6 nodes = one full quad board + one 2-proc board.
        let hw = HardwareShelf::cspi_with_nodes(6);
        assert_eq!(hw.chassis[0].boards.len(), 2);
        assert_eq!(hw.chassis[0].boards[1].processors.len(), 2);
    }

    #[test]
    fn vendor_presets_exist() {
        for v in ["CSPI", "Mercury", "SKY", "SIGI"] {
            let hw = HardwareShelf::by_name(v, 4).unwrap();
            assert_eq!(hw.node_count(), 4);
            assert_eq!(hw.name, v);
        }
        assert!(HardwareShelf::by_name("Cray", 4).is_none());
    }

    #[test]
    fn mercury_is_faster_than_sigi() {
        let m = HardwareShelf::mercury_with_nodes(4).flatten()[0]
            .proc
            .flops_per_sec();
        let s = HardwareShelf::sigi_with_nodes(4).flatten()[0]
            .proc
            .flops_per_sec();
        assert!(m > s);
    }
}
