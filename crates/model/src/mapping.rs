//! Application-to-hardware mappings.
//!
//! A mapping assigns every block of a *flattened* application graph to a
//! processor node. The engineer can author one in the Designer, or let
//! AToT's genetic algorithm produce one; the glue-code generator consumes it
//! to emit per-node schedules.

use crate::graph::AppGraph;
use crate::hardware::HardwareSpec;
use crate::ids::{BlockId, ProcId};
use crate::validate::ModelError;

/// A total assignment of blocks to processors, indexed by block id.
#[derive(Clone, Debug, PartialEq)]
pub struct Mapping {
    assignment: Vec<ProcId>,
}

impl Mapping {
    /// Creates a mapping from a dense per-block assignment vector.
    pub fn new(assignment: Vec<ProcId>) -> Mapping {
        Mapping { assignment }
    }

    /// Maps every block to node 0 (a valid degenerate mapping).
    pub fn all_on_node_zero(blocks: usize) -> Mapping {
        Mapping {
            assignment: vec![ProcId(0); blocks],
        }
    }

    /// Round-robin mapping of blocks over `nodes` processors — the simplest
    /// baseline mapper.
    pub fn round_robin(blocks: usize, nodes: usize) -> Mapping {
        assert!(nodes > 0);
        Mapping {
            assignment: (0..blocks).map(|i| ProcId((i % nodes) as u32)).collect(),
        }
    }

    /// The node a block is assigned to.
    pub fn node_of(&self, block: BlockId) -> ProcId {
        self.assignment[block.index()]
    }

    /// Reassigns one block.
    pub fn assign(&mut self, block: BlockId, node: ProcId) {
        self.assignment[block.index()] = node;
    }

    /// Number of mapped blocks.
    pub fn len(&self) -> usize {
        self.assignment.len()
    }

    /// `true` if the mapping covers no blocks.
    pub fn is_empty(&self) -> bool {
        self.assignment.is_empty()
    }

    /// The raw assignment vector.
    pub fn as_slice(&self) -> &[ProcId] {
        &self.assignment
    }

    /// Blocks assigned to `node`, in block order.
    pub fn blocks_on(&self, node: ProcId) -> Vec<BlockId> {
        self.assignment
            .iter()
            .enumerate()
            .filter(|(_, &p)| p == node)
            .map(|(i, _)| BlockId::from_index(i))
            .collect()
    }

    /// Checks the mapping against a graph and hardware model: every block
    /// covered, every node id in range.
    pub fn validate(&self, graph: &AppGraph, hw: &HardwareSpec) -> Result<(), ModelError> {
        if self.assignment.len() != graph.block_count() {
            return Err(ModelError::MappingSize {
                expected: graph.block_count(),
                actual: self.assignment.len(),
            });
        }
        let nodes = hw.node_count();
        for (i, p) in self.assignment.iter().enumerate() {
            if p.index() >= nodes {
                return Err(ModelError::MappingNode {
                    block: graph.blocks()[i].name.clone(),
                    node: p.index(),
                    nodes,
                });
            }
        }
        Ok(())
    }

    /// Number of cut edges (connections whose endpoints live on different
    /// nodes) — the communication the runtime must move over the fabric.
    pub fn cut_connections(&self, graph: &AppGraph) -> usize {
        graph
            .connections()
            .iter()
            .filter(|c| self.node_of(c.from.block) != self.node_of(c.to.block))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{Block, CostModel};
    use crate::datatype::DataType;
    use crate::hardware::{FabricSpec, HardwareSpec, Processor};
    use crate::port::{Port, Striping};

    fn tiny_graph() -> AppGraph {
        let mut g = AppGraph::new("g");
        let a = g.add_block(Block::primitive(
            "a",
            "id",
            1,
            CostModel::ZERO,
            vec![Port::output("out", DataType::Complex, Striping::Replicated)],
        ));
        let b = g.add_block(Block::primitive(
            "b",
            "id",
            1,
            CostModel::ZERO,
            vec![Port::input("in", DataType::Complex, Striping::Replicated)],
        ));
        g.connect(a, "out", b, "in").unwrap();
        g
    }

    fn hw(nodes: usize) -> HardwareSpec {
        let p = Processor {
            name: "p".into(),
            clock_mhz: 100.0,
            flops_per_cycle: 1.0,
            mem_mb: 64.0,
            mem_bw_mbps: 100.0,
        };
        let f = FabricSpec {
            bandwidth_mbps: 100.0,
            latency_us: 10.0,
        };
        HardwareSpec::homogeneous("hw", p, 1, nodes, f, f)
    }

    #[test]
    fn round_robin_cycles() {
        let m = Mapping::round_robin(5, 2);
        assert_eq!(m.node_of(BlockId(0)), ProcId(0));
        assert_eq!(m.node_of(BlockId(1)), ProcId(1));
        assert_eq!(m.node_of(BlockId(4)), ProcId(0));
        assert_eq!(
            m.blocks_on(ProcId(0)),
            vec![BlockId(0), BlockId(2), BlockId(4)]
        );
    }

    #[test]
    fn validate_checks_sizes_and_nodes() {
        let g = tiny_graph();
        let hw2 = hw(2);
        assert!(Mapping::round_robin(2, 2).validate(&g, &hw2).is_ok());
        assert!(matches!(
            Mapping::round_robin(3, 2).validate(&g, &hw2),
            Err(ModelError::MappingSize { .. })
        ));
        assert!(matches!(
            Mapping::new(vec![ProcId(0), ProcId(9)]).validate(&g, &hw2),
            Err(ModelError::MappingNode { .. })
        ));
    }

    #[test]
    fn cut_counting() {
        let g = tiny_graph();
        assert_eq!(Mapping::all_on_node_zero(2).cut_connections(&g), 0);
        assert_eq!(Mapping::round_robin(2, 2).cut_connections(&g), 1);
    }

    #[test]
    fn assign_overrides() {
        let mut m = Mapping::all_on_node_zero(3);
        m.assign(BlockId(2), ProcId(5));
        assert_eq!(m.node_of(BlockId(2)), ProcId(5));
        assert_eq!(m.len(), 3);
    }
}
