//! Typed identifiers for model objects.
//!
//! The paper: "SAGE Designer orders all function instances and assigns them
//! IDs from 0..N-1. The SAGE runtime executes functions based on this ID,
//! which is the index of this descriptor into the function table." We keep
//! that convention: ids are dense indices into the owning collection.

use std::fmt;

macro_rules! index_id {
    ($(#[$doc:meta])* $name:ident, $tag:literal) => {
        $(#[$doc])*
        #[derive(
            Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash,
        )]
        pub struct $name(pub u32);

        impl $name {
            /// The dense index this id wraps.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Constructs an id from a dense index.
            #[inline]
            pub fn from_index(i: usize) -> Self {
                $name(i as u32)
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::Debug::fmt(self, f)
            }
        }
    };
}

index_id!(
    /// Identifies a functional block within an [`crate::AppGraph`].
    BlockId,
    "B"
);
index_id!(
    /// Identifies a connection (data-flow arc) within an [`crate::AppGraph`].
    ConnId,
    "C"
);
index_id!(
    /// Identifies a flattened processor instance within a
    /// [`crate::HardwareSpec`].
    ProcId,
    "P"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_index() {
        let b = BlockId::from_index(7);
        assert_eq!(b.index(), 7);
        assert_eq!(format!("{b}"), "B7");
        assert_eq!(format!("{:?}", ConnId(3)), "C3");
        assert_eq!(format!("{}", ProcId(0)), "P0");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(BlockId(1) < BlockId(2));
        assert_eq!(BlockId(5), BlockId::from_index(5));
    }
}
