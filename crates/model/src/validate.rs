//! Model validation: the checks the Designer performs before handing a model
//! to AToT and the glue-code generator.

use crate::block::BlockKind;
use crate::graph::{AppGraph, Endpoint};
use crate::port::Direction;
use std::fmt;

/// Everything that can be wrong with a SAGE model.
#[derive(Clone, Debug, PartialEq)]
pub enum ModelError {
    /// A named port does not exist on the named block.
    NoSuchPort {
        /// Block instance name.
        block: String,
        /// Missing port name.
        port: String,
    },
    /// An endpoint's block or port index is out of range.
    BadEndpoint,
    /// A connection was attempted from a non-output or to a non-input.
    DirectionMismatch {
        /// Source port name.
        from: String,
        /// Destination port name.
        to: String,
    },
    /// The two ends of a connection carry different data types.
    TypeMismatch {
        /// Rendered source endpoint.
        from: String,
        /// Rendered destination endpoint.
        to: String,
    },
    /// An input port already has a producer.
    MultipleWriters {
        /// Block instance name.
        block: String,
        /// Port name.
        port: String,
    },
    /// The dataflow graph has a cycle.
    Cycle,
    /// A hierarchical block's boundary port has no unique internal binding.
    UnboundBoundary {
        /// Hierarchical block name.
        block: String,
        /// Boundary port name.
        port: String,
    },
    /// A boundary port matched more than one internal port.
    AmbiguousBoundary {
        /// Hierarchical block name.
        block: String,
        /// Boundary port name.
        port: String,
    },
    /// An input port is left unconnected.
    UnconnectedInput {
        /// Block instance name.
        block: String,
        /// Port name.
        port: String,
    },
    /// A striped port cannot be divided evenly among its host's threads.
    BadStriping {
        /// Block instance name.
        block: String,
        /// Port name.
        port: String,
        /// Host thread count.
        threads: usize,
    },
    /// Two blocks share an instance name.
    DuplicateName(String),
    /// A mapping does not cover the graph.
    MappingSize {
        /// Blocks in the graph.
        expected: usize,
        /// Entries in the mapping.
        actual: usize,
    },
    /// A mapping references a node outside the hardware model.
    MappingNode {
        /// Block instance name.
        block: String,
        /// Offending node index.
        node: usize,
        /// Node count of the hardware model.
        nodes: usize,
    },
    /// A primitive block references a shelf function that is not registered.
    UnknownFunction {
        /// Block instance name.
        block: String,
        /// Unresolved registry name.
        function: String,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::NoSuchPort { block, port } => {
                write!(f, "block `{block}` has no port `{port}`")
            }
            ModelError::BadEndpoint => write!(f, "endpoint out of range"),
            ModelError::DirectionMismatch { from, to } => {
                write!(f, "connection must run Out->In (got `{from}` -> `{to}`)")
            }
            ModelError::TypeMismatch { from, to } => {
                write!(f, "type mismatch: `{from}` -> `{to}`")
            }
            ModelError::MultipleWriters { block, port } => {
                write!(f, "input `{block}.{port}` already has a producer")
            }
            ModelError::Cycle => write!(f, "dataflow graph has a cycle"),
            ModelError::UnboundBoundary { block, port } => {
                write!(f, "boundary port `{block}.{port}` has no internal binding")
            }
            ModelError::AmbiguousBoundary { block, port } => {
                write!(
                    f,
                    "boundary port `{block}.{port}` matches several internal ports"
                )
            }
            ModelError::UnconnectedInput { block, port } => {
                write!(f, "input `{block}.{port}` is unconnected")
            }
            ModelError::BadStriping {
                block,
                port,
                threads,
            } => write!(
                f,
                "port `{block}.{port}` cannot be striped over {threads} threads"
            ),
            ModelError::DuplicateName(n) => write!(f, "duplicate block name `{n}`"),
            ModelError::MappingSize { expected, actual } => {
                write!(f, "mapping covers {actual} blocks, graph has {expected}")
            }
            ModelError::MappingNode { block, node, nodes } => {
                write!(
                    f,
                    "block `{block}` mapped to node {node}, hardware has {nodes}"
                )
            }
            ModelError::UnknownFunction { block, function } => {
                write!(f, "block `{block}` uses unregistered function `{function}`")
            }
        }
    }
}

impl std::error::Error for ModelError {}

/// Validates a (typically flattened) application graph:
///
/// * block instance names are unique;
/// * every input port of every non-source block is connected;
/// * every port's striping divides evenly over its host's threads;
/// * the graph is acyclic once feedback arcs leaving `delay` blocks are
///   relaxed (those cross the iteration boundary and are schedulable).
///
/// Stops at the first problem. Tooling that wants a complete report (the
/// `sage-lint` static analyzer) should use [`validate_all`] instead.
pub fn validate(graph: &AppGraph) -> Result<(), ModelError> {
    match validate_all(graph).into_iter().next() {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

/// Runs every [`validate`] check and returns *all* problems found, in the
/// same deterministic order `validate` discovers them (duplicate names
/// first, then per-block striping and connectivity, then acyclicity).
/// Returns an empty vector for a valid graph.
pub fn validate_all(graph: &AppGraph) -> Vec<ModelError> {
    let mut errors = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for b in graph.blocks() {
        if !seen.insert(b.name.as_str()) {
            errors.push(ModelError::DuplicateName(b.name.clone()));
        }
    }
    for (bi, b) in graph.blocks().iter().enumerate() {
        let threads = b.threads();
        for (pi, p) in b.ports.iter().enumerate() {
            if !p.striping_valid_for(threads) {
                errors.push(ModelError::BadStriping {
                    block: b.name.clone(),
                    port: p.name.clone(),
                    threads,
                });
            }
            if p.direction == Direction::In && !matches!(b.kind, BlockKind::Source { .. }) {
                let ep = Endpoint {
                    block: crate::ids::BlockId::from_index(bi),
                    port: pi,
                };
                if graph.incoming(ep).is_none() {
                    errors.push(ModelError::UnconnectedInput {
                        block: b.name.clone(),
                        port: p.name.clone(),
                    });
                }
            }
        }
    }
    if let Err(e) = graph.toposort_feedback() {
        errors.push(e);
    }
    errors
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{Block, CostModel};
    use crate::datatype::DataType;
    use crate::port::{Port, Striping};

    fn valid_graph() -> AppGraph {
        let mut g = AppGraph::new("g");
        let s = g.add_block(Block::source(
            "src",
            vec![Port::output(
                "out",
                DataType::complex_matrix(8, 8),
                Striping::Replicated,
            )],
        ));
        let f = g.add_block(Block::primitive(
            "fft",
            "isspl.fft_rows",
            4,
            CostModel::ZERO,
            vec![
                Port::input("in", DataType::complex_matrix(8, 8), Striping::BY_ROWS),
                Port::output("out", DataType::complex_matrix(8, 8), Striping::BY_ROWS),
            ],
        ));
        let k = g.add_block(Block::sink(
            "snk",
            vec![Port::input(
                "in",
                DataType::complex_matrix(8, 8),
                Striping::Replicated,
            )],
        ));
        g.connect(s, "out", f, "in").unwrap();
        g.connect(f, "out", k, "in").unwrap();
        g
    }

    #[test]
    fn valid_model_passes() {
        assert_eq!(validate(&valid_graph()), Ok(()));
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut g = AppGraph::new("g");
        g.add_block(Block::source("x", vec![]));
        g.add_block(Block::sink("x", vec![]));
        assert!(matches!(validate(&g), Err(ModelError::DuplicateName(_))));
    }

    #[test]
    fn unconnected_input_rejected() {
        let mut g = AppGraph::new("g");
        g.add_block(Block::sink(
            "snk",
            vec![Port::input("in", DataType::Complex, Striping::Replicated)],
        ));
        assert!(matches!(
            validate(&g),
            Err(ModelError::UnconnectedInput { .. })
        ));
    }

    #[test]
    fn bad_striping_rejected() {
        let mut g = AppGraph::new("g");
        let s = g.add_block(Block::source(
            "src",
            vec![Port::output(
                "out",
                DataType::complex_matrix(9, 9),
                Striping::Replicated,
            )],
        ));
        let f = g.add_block(Block::primitive(
            "f",
            "id",
            4, // 9 rows cannot stripe over 4 threads
            CostModel::ZERO,
            vec![Port::input(
                "in",
                DataType::complex_matrix(9, 9),
                Striping::BY_ROWS,
            )],
        ));
        g.connect(s, "out", f, "in").unwrap();
        assert!(matches!(validate(&g), Err(ModelError::BadStriping { .. })));
    }

    #[test]
    fn validate_all_accumulates_every_error() {
        // Duplicate name + bad striping + unconnected input in one graph.
        let mut g = AppGraph::new("g");
        g.add_block(Block::source("x", vec![]));
        g.add_block(Block::primitive(
            "x",
            "id",
            4,
            CostModel::ZERO,
            vec![Port::input(
                "in",
                DataType::complex_matrix(9, 9),
                Striping::BY_ROWS, // 9 rows over 4 threads: bad striping
            )],
        ));
        let errors = validate_all(&g);
        assert_eq!(errors.len(), 3, "{errors:?}");
        assert!(matches!(errors[0], ModelError::DuplicateName(_)));
        assert!(matches!(errors[1], ModelError::BadStriping { .. }));
        assert!(matches!(errors[2], ModelError::UnconnectedInput { .. }));
        // First-error-wins façade agrees with the accumulating pass.
        assert_eq!(validate(&g), Err(errors[0].clone()));
    }

    #[test]
    fn error_messages_render() {
        let e = ModelError::NoSuchPort {
            block: "b".into(),
            port: "p".into(),
        };
        assert!(e.to_string().contains("no port"));
        assert!(ModelError::Cycle.to_string().contains("cycle"));
    }
}
