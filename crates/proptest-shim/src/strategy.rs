//! The [`Strategy`] trait and the combinators the workspace's property
//! tests use: ranges, tuples, [`Just`], [`Map`] (`prop_map`), [`Union`]
//! (`prop_oneof!`), and [`VecStrategy`] (`collection::vec`).

use crate::test_runner::TestRng;
use sage_rng::SampleRange;

/// A recipe for generating values of `Self::Value` from a seeded RNG.
///
/// Unlike upstream proptest there is no value tree / shrinking: a strategy
/// is just a deterministic function of the RNG stream, which keeps every
/// case reproducible from its printed seed.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f` (mirrors `Strategy::prop_map`).
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases this strategy (mirrors `Strategy::boxed`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy, as produced by [`Strategy::boxed`].
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

/// A strategy that always yields a clone of its payload.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl<T> Strategy for core::ops::Range<T>
where
    core::ops::Range<T>: SampleRange<T> + Clone,
{
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        self.clone().sample_from(&mut rng.rng)
    }
}

impl<T> Strategy for core::ops::RangeInclusive<T>
where
    core::ops::RangeInclusive<T>: SampleRange<T> + Clone,
{
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        self.clone().sample_from(&mut rng.rng)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    pub(crate) inner: S,
    pub(crate) f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Uniform choice among several boxed strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = (rng.next_u64() % self.options.len() as u64) as usize;
        self.options[idx].sample(rng)
    }
}

/// A length specification for [`crate::collection::vec`]: an exact size or
/// a half-open / inclusive range.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    /// Inclusive upper bound.
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// The strategy returned by [`crate::collection::vec`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi - self.size.lo) as u64 + 1;
        let len = self.size.lo + (rng.next_u64() % span) as usize;
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
