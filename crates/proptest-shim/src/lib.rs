//! A self-contained property-based testing harness exposing the *subset* of
//! the `proptest` crate API this workspace uses: the [`Strategy`] trait with
//! ranges / tuples / `prop_map` / `prop_oneof!` / `collection::vec`, and the
//! `proptest!` / `prop_assert!` / `prop_assume!` macro family.
//!
//! The workspace aliases this crate as `proptest` (see
//! `[workspace.dependencies]`), so tests keep the idiomatic proptest
//! spelling while builds stay fully offline / air-gapped.
//!
//! Two deliberate departures from upstream proptest:
//!
//! 1. **Deterministic by default.** Case seeds are derived from a hash of
//!    the fully-qualified test name and the case index, so a given test
//!    binary explores the same inputs on every run and on every machine.
//!    There is no persistence file and no wall-clock entropy.
//! 2. **No shrinking.** On failure the harness prints the case seed;
//!    re-running with `PROPTEST_CASE_SEED=<seed>` replays exactly that
//!    case, which is what shrinking is mostly used for in practice.

#![warn(missing_docs)]

pub mod strategy;
pub mod test_runner;

/// `proptest::collection` — strategies for collections.
pub mod collection {
    use crate::strategy::{SizeRange, Strategy, VecStrategy};

    /// A strategy producing `Vec`s of `element` with a length drawn from
    /// `size` (an exact `usize`, `a..b`, or `a..=b`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// The most common imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng, TestRunner};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines deterministic property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0usize..100, (a, b) in my_strategy()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { cfg = { $cfg }; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! {
            cfg = { $crate::test_runner::ProptestConfig::default() };
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`]: expands one test fn at a time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (cfg = { $cfg:expr };) => {};
    (cfg = { $cfg:expr };
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut runner = $crate::test_runner::TestRunner::new(
                config,
                concat!(module_path!(), "::", stringify!($name)),
            );
            runner.run(&mut |__proptest_rng: &mut $crate::test_runner::TestRng| {
                $(
                    let $pat =
                        $crate::strategy::Strategy::sample(&($strat), __proptest_rng);
                )+
                $body
                ::std::result::Result::Ok(())
            });
        }
        $crate::__proptest_tests! { cfg = { $cfg }; $($rest)* }
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (with the
/// reproduction seed) rather than panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts two expressions are equal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` != `{:?}`: {}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

/// Asserts two expressions are unequal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
}

/// Discards the current case (without counting it towards the case budget)
/// when its inputs do not satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// Picks uniformly among several strategies with the same `Value` type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (usize, usize)> {
        (1usize..10, 1usize..10)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_maps_compose(
            (a, b) in pair(),
            scaled in (0usize..5).prop_map(|x| x * 3),
            choice in prop_oneof![Just(1u8), Just(2u8)],
        ) {
            prop_assert!(a < 10 && b < 10);
            prop_assert!(scaled % 3 == 0 && scaled < 15);
            prop_assert!(choice == 1 || choice == 2, "choice was {}", choice);
        }

        #[test]
        fn vec_lengths_respect_size_range(
            fixed in crate::collection::vec(0u8..=255, 7),
            ranged in crate::collection::vec((0i64..4, 0i64..4), 2..5),
        ) {
            prop_assert_eq!(fixed.len(), 7);
            prop_assert!((2..5).contains(&ranged.len()));
        }

        #[test]
        fn assume_discards_without_failing(x in 0usize..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn same_name_same_cases() {
        let draw = |_: ()| {
            let mut out = Vec::new();
            let mut runner = TestRunner::new(ProptestConfig::with_cases(8), "fixed::name");
            runner.run(&mut |rng| {
                out.push(Strategy::sample(&(0u64..1_000_000), rng));
                Ok(())
            });
            out
        };
        assert_eq!(draw(()), draw(()));
    }

    #[test]
    #[should_panic(expected = "PROPTEST_CASE_SEED")]
    fn failures_print_reproduction_seed() {
        let mut runner = TestRunner::new(ProptestConfig::with_cases(4), "failing::test");
        runner.run(&mut |_rng| Err(TestCaseError::fail("boom".to_string())));
    }
}
