//! The deterministic case runner behind the `proptest!` macro.

use sage_rng::{rngs::StdRng, SeedableRng};

/// Runner configuration (mirrors the fields of `proptest::ProptestConfig`
/// this workspace uses).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of successful (non-rejected) cases to run.
    pub cases: u32,
    /// Cap on consecutive `prop_assume!` rejections before the runner
    /// declares the strategy too narrow and fails.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases with the default rejection cap.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Default::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 65536,
        }
    }
}

/// Why a single case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The case's inputs violated a `prop_assume!` precondition; the case
    /// is discarded and does not count towards the budget.
    Reject(String),
    /// An assertion failed; the whole test fails.
    Fail(String),
}

impl TestCaseError {
    /// Builds the assertion-failure variant.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }

    /// Builds the precondition-violated variant.
    pub fn reject(message: impl Into<String>) -> Self {
        TestCaseError::Reject(message.into())
    }
}

/// The RNG handed to each case. Strategies consume bits from it in
/// sequence, so a case is fully described by its 64-bit seed.
pub struct TestRng {
    pub(crate) rng: StdRng,
}

impl TestRng {
    /// Creates a stream from a case seed.
    pub fn from_seed(seed: u64) -> Self {
        TestRng {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Draws 64 raw bits.
    pub fn next_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }
}

/// FNV-1a, used to turn the fully-qualified test name into a seed base so
/// different tests explore different input streams.
fn hash_name(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Drives the cases of one property test.
pub struct TestRunner {
    config: ProptestConfig,
    name: &'static str,
    seed_base: u64,
}

impl TestRunner {
    /// Creates a runner for the test named `name` (used to derive seeds and
    /// in failure messages).
    pub fn new(config: ProptestConfig, name: &'static str) -> Self {
        let seed_base = hash_name(name);
        TestRunner {
            config,
            name,
            seed_base,
        }
    }

    /// The seed for case index `case` of this test.
    fn case_seed(&self, case: u64) -> u64 {
        // splitmix64 of (base ^ index) keeps adjacent cases uncorrelated.
        let mut z = self
            .seed_base
            .wrapping_add(case.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Runs the configured number of cases, panicking (with a reproduction
    /// seed) on the first failure.
    ///
    /// Setting `PROPTEST_CASE_SEED=<seed>` replays exactly one case with
    /// that seed instead — the supported way to reproduce a failure.
    pub fn run<F>(&mut self, body: &mut F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        if let Ok(var) = std::env::var("PROPTEST_CASE_SEED") {
            let seed: u64 = var
                .parse()
                .unwrap_or_else(|_| panic!("PROPTEST_CASE_SEED must be a u64, got `{var}`"));
            let mut rng = TestRng::from_seed(seed);
            match body(&mut rng) {
                Ok(()) => return,
                Err(TestCaseError::Reject(why)) => {
                    panic!(
                        "{}: replayed case seed {seed} was rejected: {why}",
                        self.name
                    )
                }
                Err(TestCaseError::Fail(why)) => {
                    panic!(
                        "{}: case failed with PROPTEST_CASE_SEED={seed}: {why}",
                        self.name
                    )
                }
            }
        }

        let mut passed = 0u32;
        let mut rejected = 0u32;
        let mut case_index = 0u64;
        while passed < self.config.cases {
            let seed = self.case_seed(case_index);
            case_index += 1;
            let mut rng = TestRng::from_seed(seed);
            match body(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    if rejected > self.config.max_global_rejects {
                        panic!(
                            "{}: too many prop_assume! rejections ({rejected}); \
                             strategy is too narrow",
                            self.name
                        );
                    }
                }
                Err(TestCaseError::Fail(why)) => {
                    panic!(
                        "{}: case {passed} failed; reproduce with PROPTEST_CASE_SEED={seed}\n{why}",
                        self.name
                    );
                }
            }
        }
    }
}
