//! Shared pieces of the hand-coded distributed implementations: tile
//! packing for `MPI_All_to_All` and the transposing unpack, exactly as the
//! CSPI reference codes organize the exchange.

use sage_signal::complex::{as_bytes, from_bytes};
use sage_signal::Complex32;

/// Packs a local row-stripe (`rl` rows of `size` columns) into one
/// contiguous tile per destination: destination `j` receives the `rl x cl`
/// tile of columns `j*cl..(j+1)*cl`, where `cl = size / n`.
pub fn pack_tiles(local: &[Complex32], rl: usize, size: usize, n: usize) -> Vec<Vec<u8>> {
    assert_eq!(local.len(), rl * size);
    assert_eq!(size % n, 0);
    let cl = size / n;
    (0..n)
        .map(|j| {
            let mut tile = Vec::with_capacity(rl * cl);
            for r in 0..rl {
                let row = &local[r * size + j * cl..r * size + (j + 1) * cl];
                tile.extend_from_slice(row);
            }
            as_bytes(&tile).to_vec()
        })
        .collect()
}

/// Unpacks the received tiles (index = source rank) while transposing: the
/// result is this rank's `cl x size` row-stripe of the **transposed**
/// matrix. Source `j`'s tile holds rows `j*rl..` of the original matrix
/// restricted to this rank's `cl` columns.
pub fn unpack_transpose(tiles: &[Vec<u8>], rl: usize, cl: usize, size: usize) -> Vec<Complex32> {
    assert_eq!(tiles.len() * rl, size);
    let mut out = vec![Complex32::ZERO; cl * size];
    for (j, bytes) in tiles.iter().enumerate() {
        let tile = from_bytes(bytes);
        assert_eq!(tile.len(), rl * cl, "tile from rank {j} has wrong size");
        for r in 0..rl {
            for c in 0..cl {
                out[c * size + j * rl + r] = tile[r * cl + c];
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload;

    #[test]
    fn pack_then_unpack_transposes() {
        // Simulate 2 ranks on an 8x8 matrix without any communication.
        let size = 8;
        let n = 2;
        let rl = size / n;
        let cl = size / n;
        let full = workload::input_matrix(3, size);
        let stripes: Vec<Vec<Complex32>> = (0..n)
            .map(|me| workload::input_stripe(3, size, me * rl, rl))
            .collect();
        let packed: Vec<Vec<Vec<u8>>> =
            stripes.iter().map(|s| pack_tiles(s, rl, size, n)).collect();
        // "alltoall": rank me receives packed[j][me] from each j.
        #[allow(clippy::needless_range_loop)]
        for me in 0..n {
            let tiles: Vec<Vec<u8>> = (0..n).map(|j| packed[j][me].clone()).collect();
            let out = unpack_transpose(&tiles, rl, cl, size);
            // Row c of `out` is column me*cl + c of the original.
            for c in 0..cl {
                for r in 0..size {
                    assert_eq!(out[c * size + r], full.get(r, me * cl + c), "me={me}");
                }
            }
        }
    }

    #[test]
    fn pack_tile_sizes() {
        let local = workload::input_stripe(1, 8, 0, 2);
        let tiles = pack_tiles(&local, 2, 8, 4);
        assert_eq!(tiles.len(), 4);
        for t in &tiles {
            assert_eq!(t.len(), 2 * 2 * 8); // rl x cl complex samples
        }
    }

    #[test]
    #[should_panic]
    fn unpack_rejects_bad_tiles() {
        let tiles = vec![vec![0u8; 8]; 2];
        unpack_transpose(&tiles, 4, 4, 8);
    }
}
