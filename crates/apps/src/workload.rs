//! Deterministic workload generation and serial reference implementations.
//!
//! The paper's data sets ("a 1024x1024 data matrix ... provided by CSPI")
//! are not available, so inputs are synthesized deterministically: every
//! element is a pure function of `(seed, row, col)`, which lets each
//! distributed source thread generate exactly its stripe with no
//! communication — the same property the real benchmark harness had with
//! pre-staged sensor data.

use sage_signal::fft::{Fft1d, FftDirection};
use sage_signal::{Complex32, Matrix};

/// SplitMix64 — a tiny, high-quality 64-bit mixer.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// The deterministic input sample at `(row, col)` for a given seed: both
/// components uniform in [-1, 1).
pub fn sample(seed: u64, row: usize, col: usize) -> Complex32 {
    let h = splitmix64(seed ^ ((row as u64) << 32) ^ col as u64);
    let re = ((h >> 40) as f32 / (1u64 << 23) as f32) - 1.0;
    let im = (((h >> 8) & 0xFFFFFF) as f32 / (1u64 << 23) as f32) - 1.0;
    Complex32::new(re, im)
}

/// Generates the full `size x size` input matrix.
pub fn input_matrix(seed: u64, size: usize) -> Matrix {
    Matrix::from_fn(size, size, |r, c| sample(seed, r, c))
}

/// Generates one row-stripe (`rows` rows starting at `row0`) of the input.
pub fn input_stripe(seed: u64, size: usize, row0: usize, rows: usize) -> Vec<Complex32> {
    let mut v = Vec::with_capacity(rows * size);
    for r in row0..row0 + rows {
        for c in 0..size {
            v.push(sample(seed, r, c));
        }
    }
    v
}

/// Serial reference 2D FFT, returned **transposed** (`[cols, rows]`) to
/// match the distributed decomposition's natural output layout.
pub fn fft2d_reference_transposed(input: &Matrix) -> Matrix {
    let (rows, cols) = (input.rows(), input.cols());
    let mut work = input.clone();
    Fft1d::new(cols, FftDirection::Forward).process_rows(work.as_mut_slice());
    let mut t = work.transposed(); // [cols, rows]
    Fft1d::new(rows, FftDirection::Forward).process_rows(t.as_mut_slice());
    t
}

/// Serial reference corner turn: the plain transpose.
pub fn corner_turn_reference(input: &Matrix) -> Matrix {
    input.transposed()
}

/// Relative error between two matrices (max abs diff over max abs value).
pub fn relative_error(a: &Matrix, b: &Matrix) -> f32 {
    let scale = a
        .as_slice()
        .iter()
        .map(|z| z.abs())
        .fold(f32::EPSILON, f32::max);
    a.max_abs_diff(b) / scale
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_are_deterministic_and_bounded() {
        assert_eq!(sample(1, 5, 9), sample(1, 5, 9));
        assert_ne!(sample(1, 5, 9), sample(2, 5, 9));
        assert_ne!(sample(1, 5, 9), sample(1, 5, 10));
        for r in 0..20 {
            for c in 0..20 {
                let z = sample(42, r, c);
                assert!(z.re >= -1.0 && z.re < 1.0);
                assert!(z.im >= -1.0 && z.im < 1.0);
            }
        }
    }

    #[test]
    fn stripes_tile_the_matrix() {
        let m = input_matrix(7, 8);
        let top = input_stripe(7, 8, 0, 4);
        let bottom = input_stripe(7, 8, 4, 4);
        assert_eq!(&m.as_slice()[..32], &top[..]);
        assert_eq!(&m.as_slice()[32..], &bottom[..]);
    }

    #[test]
    fn reference_fft2d_matches_manual_composition() {
        let input = input_matrix(3, 8);
        let t = fft2d_reference_transposed(&input);
        assert_eq!((t.rows(), t.cols()), (8, 8));
        // Spot-check one output bin against the direct 2D DFT definition.
        let (k1, k2) = (3usize, 5usize);
        let mut acc_re = 0.0f64;
        let mut acc_im = 0.0f64;
        for r in 0..8 {
            for c in 0..8 {
                let theta = -2.0 * std::f64::consts::PI * ((k1 * r + k2 * c) as f64) / 8.0;
                let x = input.get(r, c);
                let (s, co) = theta.sin_cos();
                acc_re += x.re as f64 * co - x.im as f64 * s;
                acc_im += x.re as f64 * s + x.im as f64 * co;
            }
        }
        // Output is transposed: bin (k1 rows, k2 cols) lives at [k2, k1].
        let got = t.get(k2, k1);
        assert!((got.re as f64 - acc_re).abs() < 1e-3, "{got} vs {acc_re}");
        assert!((got.im as f64 - acc_im).abs() < 1e-3);
    }

    #[test]
    fn corner_turn_reference_is_transpose() {
        let input = input_matrix(9, 4);
        let t = corner_turn_reference(&input);
        for r in 0..4 {
            for c in 0..4 {
                assert_eq!(t.get(r, c), input.get(c, r));
            }
        }
    }

    #[test]
    fn relative_error_zero_for_identical() {
        let m = input_matrix(1, 4);
        assert_eq!(relative_error(&m, &m), 0.0);
        let z = Matrix::zeros(4, 4);
        assert!(relative_error(&m, &z) > 0.0);
    }
}
