//! A frequency-domain beamformer for a uniform linear array — the third
//! radar-domain pipeline, alongside STAP (the paper's motivating
//! application family).
//!
//! Data is a `channels x samples` complex matrix, one row per array
//! element. The pipeline applies per-channel amplitude shading (a Hamming
//! taper suppresses spatial sidelobes), corner-turns the matrix and FFTs
//! across the channel dimension — for a uniform linear array the spatial
//! DFT *is* the set of simultaneously formed beams — then detects beam
//! power:
//!
//! source → shading (window) → corner turn + spatial FFT (beams) →
//! power (magnitude) → sink.
//!
//! The corner turn in the middle makes this a genuinely distributed
//! pipeline: every node exchanges stripes with every other node between
//! the shading and beamforming stages.

use crate::fft2d::SEED;
use crate::kernels::register_kernels;
use sage_core::Project;
use sage_model::{AppGraph, Block, CostModel, DataType, HardwareShelf, Port, PropValue, Striping};
use sage_signal::cost;

/// Builds the beamformer Designer model for a `size x size` array frame
/// (`size` channels of `size` samples) striped over `threads` threads.
pub fn sage_model(size: usize, threads: usize) -> AppGraph {
    assert!(size.is_power_of_two());
    assert_eq!(size % threads, 0);
    let mat = DataType::complex_matrix(size, size);
    let to_cm = |k: cost::KernelCost| CostModel::new(k.flops, k.mem_bytes);
    let mut g = AppGraph::new(format!("beamformer_{size}"));

    let src = g.add_block(
        Block::source_threaded(
            "array",
            threads,
            vec![Port::output("out", mat.clone(), Striping::BY_ROWS)],
        )
        .with_prop("kernel", PropValue::Str("workload.matrix".into()))
        .with_prop("seed", PropValue::Int(SEED as i64)),
    );
    let shade = g.add_block(Block::primitive(
        "shading",
        "isspl.window_rows",
        threads,
        to_cm(cost::window_cost(size * size)),
        vec![
            Port::input("in", mat.clone(), Striping::BY_ROWS),
            Port::output("out", mat.clone(), Striping::BY_ROWS),
        ],
    ));
    let beams = g.add_block(Block::primitive(
        "beams",
        "isspl.transpose_fft_rows",
        threads,
        to_cm(cost::transpose_cost(size, size).plus(cost::fft_rows_cost(size, size))),
        vec![
            Port::input("in", mat.clone(), Striping::BY_COLS),
            Port::output("out", mat.clone(), Striping::BY_ROWS),
        ],
    ));
    let power = g.add_block(Block::primitive(
        "power",
        "isspl.magnitude",
        threads,
        to_cm(cost::magnitude_cost(size * size)),
        vec![
            Port::input("in", mat.clone(), Striping::BY_ROWS),
            Port::output("out", mat.clone(), Striping::BY_ROWS),
        ],
    ));
    let snk = g.add_block(Block::sink_threaded(
        "beam_power",
        threads,
        vec![Port::input("in", mat, Striping::BY_ROWS)],
    ));
    g.connect(src, "out", shade, "in").expect("wiring");
    g.connect(shade, "out", beams, "in").expect("wiring");
    g.connect(beams, "out", power, "in").expect("wiring");
    g.connect(power, "out", snk, "in").expect("wiring");
    g
}

/// Builds the project on a CSPI machine.
pub fn sage_project(size: usize, nodes: usize) -> Project {
    let mut p = Project::new(
        sage_model(size, nodes),
        HardwareShelf::cspi_with_nodes(nodes),
    );
    register_kernels(&mut p.registry);
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use sage_core::Placement;
    use sage_fabric::TimePolicy;
    use sage_runtime::RuntimeOptions;

    #[test]
    fn model_validates() {
        let m = sage_model(32, 4);
        assert_eq!(m.block_count(), 5);
        assert!(sage_model::validate(&m).is_ok());
    }

    #[test]
    fn pipeline_forms_beam_powers() {
        let p = sage_project(16, 2);
        let (exec, _) = p
            .run(
                &Placement::Aligned,
                TimePolicy::Virtual,
                &RuntimeOptions::paper_faithful(),
                1,
            )
            .unwrap();
        let (program, _) = p.generate(&Placement::Aligned).unwrap();
        let sink_id = (program.functions.len() - 1) as u32;
        let bytes = exec.results.assemble(&program, sink_id, 0).unwrap();
        let data = sage_signal::complex::from_bytes(&bytes);
        // Beam power is real and non-negative, and the frame is not silent.
        assert!(data.iter().all(|z| z.im == 0.0 && z.re >= 0.0));
        assert!(data.iter().any(|z| z.re > 0.0));
    }
}
