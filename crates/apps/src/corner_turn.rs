//! The **Distributed Corner Turn** benchmark (paper §3.1), in both forms.
//!
//! The matrix starts row-striped across the nodes and must end up
//! column-striped (equivalently: row-striped in transposed form) — the
//! re-orientation every radar chain performs between range and Doppler
//! processing. The hand-coded form is pack → vendor `MPI_All_to_All` →
//! transposing unpack; the SAGE form is a row-striped source feeding a
//! column-striped transpose function, with the run-time's striping engine
//! carrying the exchange.

use crate::dist::{pack_tiles, unpack_transpose};
use crate::fft2d::{DistRun, SEED};
use crate::kernels::register_kernels;
use crate::workload;
use sage_core::{Placement, Project, ProjectError};
use sage_fabric::{Cluster, MachineSpec, TimePolicy, Work};
use sage_model::{AppGraph, Block, CostModel, DataType, HardwareShelf, Port, PropValue, Striping};
use sage_mpi::{Communicator, MpiConfig};
use sage_runtime::RuntimeOptions;
use sage_signal::complex::{as_bytes, from_bytes};
use sage_signal::cost;
use sage_signal::Matrix;

/// Builds the SAGE Designer model of the distributed corner turn.
pub fn sage_model(size: usize, threads: usize) -> AppGraph {
    assert_eq!(size % threads, 0);
    let mat = DataType::complex_matrix(size, size);
    let mut g = AppGraph::new(format!("corner_turn_{size}"));
    let to_cm = |k: cost::KernelCost| CostModel::new(k.flops, k.mem_bytes);

    let src = g.add_block(
        Block::source_threaded(
            "src",
            threads,
            vec![Port::output("out", mat.clone(), Striping::BY_ROWS)],
        )
        .with_prop("kernel", PropValue::Str("workload.matrix".into()))
        .with_prop("seed", PropValue::Int(SEED as i64)),
    );
    let ct = g.add_block(Block::primitive(
        "corner_turn",
        "isspl.transpose",
        threads,
        to_cm(cost::transpose_cost(size, size)),
        vec![
            Port::input("in", mat.clone(), Striping::BY_COLS),
            Port::output("out", mat.clone(), Striping::BY_ROWS),
        ],
    ));
    let snk = g.add_block(Block::sink_threaded(
        "snk",
        threads,
        vec![Port::input("in", mat, Striping::BY_ROWS)],
    ));
    g.connect(src, "out", ct, "in").expect("model wiring");
    g.connect(ct, "out", snk, "in").expect("model wiring");
    g
}

/// Builds the full project for `nodes` CSPI nodes.
pub fn sage_project(size: usize, nodes: usize) -> Project {
    let mut p = Project::new(
        sage_model(size, nodes),
        HardwareShelf::cspi_with_nodes(nodes),
    );
    register_kernels(&mut p.registry);
    p
}

/// Runs the SAGE auto-generated form.
pub fn run_sage(
    size: usize,
    nodes: usize,
    policy: TimePolicy,
    options: &RuntimeOptions,
    iterations: u32,
) -> DistRun {
    try_run_sage(size, nodes, policy, options, iterations).expect("execution")
}

/// Fallible variant of [`run_sage`]: surfaces injected-fault failures as
/// structured [`ProjectError`]s instead of panicking.
pub fn try_run_sage(
    size: usize,
    nodes: usize,
    policy: TimePolicy,
    options: &RuntimeOptions,
    iterations: u32,
) -> Result<DistRun, ProjectError> {
    let project = sage_project(size, nodes);
    let (program, _src) = project.generate(&Placement::Aligned)?;
    let exec = project.execute(&program, policy, options, iterations)?;
    let sink_id = (program.functions.len() - 1) as u32;
    let bytes = exec
        .results
        .assemble(&program, sink_id, iterations - 1)
        .expect("sink result");
    Ok(DistRun {
        per_iter_secs: exec.secs_per_iteration(),
        makespan: exec.report.makespan,
        wall: exec.report.wall,
        result: Matrix::from_vec(size, size, from_bytes(&bytes)),
        metrics: exec.report.metrics,
    })
}

/// Runs the hand-coded MPI form.
pub fn run_hand_coded(size: usize, nodes: usize, policy: TimePolicy, iterations: u32) -> DistRun {
    assert_eq!(size % nodes, 0);
    let machine = MachineSpec::from_hardware(&HardwareShelf::cspi_with_nodes(nodes));
    let cluster = Cluster::new(machine, policy);
    let rl = size / nodes;
    let cl = size / nodes;

    let (stripes, report) = cluster.run(|ctx| {
        let me = ctx.id();
        let n = ctx.nodes();
        let mut comm = Communicator::new(ctx, MpiConfig::vendor_tuned());
        let mut last = Vec::new();
        for _iter in 0..iterations {
            let local = workload::input_stripe(SEED, size, me * rl, rl);
            // Pack tiles for the exchange.
            comm.ctx().compute(Work::copy(local.len() * 8));
            let blocks = pack_tiles(&local, rl, size, n);
            let tiles = comm.alltoall_tuned(&blocks);
            // Transposing unpack completes the corner turn.
            let t = cost::transpose_cost(cl, size);
            comm.ctx().compute(Work {
                flops: t.flops,
                mem_bytes: t.mem_bytes,
                overhead_secs: 0.0,
            });
            last = unpack_transpose(&tiles, rl, cl, size);
        }
        as_bytes(&last).to_vec()
    });

    let mut full = Vec::with_capacity(size * size);
    for s in &stripes {
        full.extend(from_bytes(s));
    }
    DistRun {
        per_iter_secs: if iterations > 0 {
            report.makespan / iterations as f64
        } else {
            0.0
        },
        makespan: report.makespan,
        wall: report.wall,
        result: Matrix::from_vec(size, size, full),
        metrics: report.metrics,
    }
}

/// Relative error against the serial transpose (0 expected: the corner turn
/// moves data without arithmetic).
pub fn verify(run: &DistRun, size: usize) -> f32 {
    let reference = workload::corner_turn_reference(&workload::input_matrix(SEED, size));
    workload::relative_error(&reference, &run.result)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hand_coded_is_exact() {
        let run = run_hand_coded(32, 4, TimePolicy::Virtual, 1);
        assert_eq!(verify(&run, 32), 0.0);
    }

    #[test]
    fn sage_is_exact() {
        let run = run_sage(
            32,
            4,
            TimePolicy::Virtual,
            &RuntimeOptions::paper_faithful(),
            1,
        );
        assert_eq!(verify(&run, 32), 0.0);
    }

    #[test]
    fn works_on_two_nodes_and_odd_node_counts() {
        for nodes in [1usize, 2, 8] {
            let run = run_sage(
                32,
                nodes,
                TimePolicy::Virtual,
                &RuntimeOptions::paper_faithful(),
                1,
            );
            assert_eq!(verify(&run, 32), 0.0, "nodes={nodes}");
        }
    }

    #[test]
    fn sage_overhead_is_worst_at_two_nodes() {
        // Paper §3.4: "A performance hit was taken on a two-node
        // configuration" — the unique-buffer copies scale with the local
        // stripe, which is biggest at small node counts.
        let pct = |nodes| {
            let sage = run_sage(
                128,
                nodes,
                TimePolicy::Virtual,
                &RuntimeOptions::paper_faithful(),
                2,
            );
            let hand = run_hand_coded(128, nodes, TimePolicy::Virtual, 2);
            hand.per_iter_secs / sage.per_iter_secs
        };
        let two = pct(2);
        let eight = pct(8);
        assert!(
            two < eight,
            "2-node pct {two} should be below 8-node {eight}"
        );
    }

    #[test]
    fn optimized_runtime_closes_the_gap() {
        let paper = run_sage(
            64,
            4,
            TimePolicy::Virtual,
            &RuntimeOptions::paper_faithful(),
            2,
        );
        let improved = run_sage(64, 4, TimePolicy::Virtual, &RuntimeOptions::optimized(), 2);
        assert!(improved.per_iter_secs < paper.per_iter_secs);
    }
}
