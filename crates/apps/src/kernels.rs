//! ISSPL-like shelf kernels registered with the run-time, plus the software
//! shelf entries carrying their cost models.

use crate::workload;
use sage_model::{CostModel, ShelfFunction, SoftwareShelf};
use sage_runtime::{FnThreadCtx, Registry};
use sage_signal::complex::{as_bytes, from_bytes};
use sage_signal::cost;
use sage_signal::fft::{Fft1d, FftDirection};
use sage_signal::transpose::transpose_blocked;
use sage_signal::window::{apply_window, window_coefficients, WindowKind};
use std::collections::HashMap;
use std::sync::Mutex;

/// Plan cache shared by the FFT kernels (the 10x100-iteration benchmark
/// loops of the paper must not rebuild twiddle tables).
struct PlanCache {
    plans: Mutex<HashMap<(usize, bool), std::sync::Arc<Fft1d>>>,
}

impl PlanCache {
    fn new() -> Self {
        PlanCache {
            plans: Mutex::new(HashMap::new()),
        }
    }

    fn get(&self, n: usize) -> std::sync::Arc<Fft1d> {
        self.get_dir(n, FftDirection::Forward)
    }

    fn get_dir(&self, n: usize, dir: FftDirection) -> std::sync::Arc<Fft1d> {
        let inverse = dir == FftDirection::Inverse;
        let mut map = self.plans.lock().expect("plan cache poisoned");
        map.entry((n, inverse))
            .or_insert_with(|| std::sync::Arc::new(Fft1d::new(n, dir)))
            .clone()
    }
}

/// Registers every application kernel used by the benchmark models.
///
/// * `workload.matrix` — source kernel: fills its output stripe with the
///   deterministic input samples; needs params `seed` and `size` and a
///   row-striped output;
/// * `isspl.fft_rows` — forward FFT of every row of the local stripe;
/// * `isspl.transpose` — local tile transpose (`[r, c]` → `[c, r]`);
/// * `isspl.transpose_fft_rows` — fused corner-turn-consumer kernel:
///   transpose the local `[R, C/N]` column stripe to `[C/N, R]`, then FFT
///   its rows (i.e. the original matrix's columns);
/// * `isspl.window_rows` — Hamming window applied to every row;
/// * `isspl.magnitude` — element-wise power (squared magnitude) into the
///   real part, used by the detection stage;
/// * `workload.bytes` — dtype-agnostic seeded byte source (fuzz corpus);
/// * `workload.splat` — fan-out-tolerant pass-through: copies the input
///   stripe into every output buffer (fuzz corpus);
/// * `workload.mix` — feedback combiner: XORs the forward input with the
///   (usually `delay`-arc) feedback input (pipeline-safety fixtures and
///   fuzz corpus).
pub fn register_kernels(reg: &mut Registry) {
    let cache = std::sync::Arc::new(PlanCache::new());

    reg.register("workload.matrix", |ctx: &mut FnThreadCtx<'_>| {
        let seed = ctx.param_i64("seed").unwrap_or(0) as u64;
        let out = ctx
            .outputs
            .first_mut()
            .ok_or("workload.matrix needs an output")?;
        if out.shape.len() != 2 {
            return Err(format!("expected a matrix stripe, got {:?}", out.shape));
        }
        let (rows, cols) = (out.shape[0], out.shape[1]);
        // Row-striped output: global row offset = thread * local rows.
        let row0 = ctx.thread * rows;
        let data = workload::input_stripe(seed, cols, row0, rows);
        out.bytes.copy_from_slice(as_bytes(&data));
        Ok(())
    });

    let c = cache.clone();
    reg.register("isspl.fft_rows", move |ctx: &mut FnThreadCtx<'_>| {
        let input = ctx.inputs.first().ok_or("isspl.fft_rows needs an input")?;
        let cols = *input.shape.last().ok_or("scalar input")?;
        let mut data = from_bytes(&input.bytes);
        c.get(cols).process_rows(&mut data);
        let out = &mut ctx.outputs[0];
        out.bytes.copy_from_slice(as_bytes(&data));
        Ok(())
    });

    reg.register("isspl.transpose", |ctx: &mut FnThreadCtx<'_>| {
        let input = ctx.inputs.first().ok_or("isspl.transpose needs an input")?;
        if input.shape.len() != 2 {
            return Err(format!("expected a matrix stripe, got {:?}", input.shape));
        }
        let (r, cdim) = (input.shape[0], input.shape[1]);
        let data = from_bytes(&input.bytes);
        let mut out_data = vec![sage_signal::Complex32::ZERO; r * cdim];
        transpose_blocked(&data, &mut out_data, r, cdim, 32);
        let out = &mut ctx.outputs[0];
        if out.shape != [cdim, r] {
            return Err(format!(
                "transpose output shape {:?} does not match [{cdim}, {r}]",
                out.shape
            ));
        }
        out.bytes.copy_from_slice(as_bytes(&out_data));
        Ok(())
    });

    let c = cache.clone();
    reg.register(
        "isspl.transpose_fft_rows",
        move |ctx: &mut FnThreadCtx<'_>| {
            let input = ctx.inputs.first().ok_or("needs an input")?;
            if input.shape.len() != 2 {
                return Err(format!("expected a matrix stripe, got {:?}", input.shape));
            }
            let (r, cdim) = (input.shape[0], input.shape[1]);
            let data = from_bytes(&input.bytes);
            let mut t = vec![sage_signal::Complex32::ZERO; r * cdim];
            transpose_blocked(&data, &mut t, r, cdim, 32);
            c.get(r).process_rows(&mut t); // rows now have length r
            ctx.outputs[0].bytes.copy_from_slice(as_bytes(&t));
            Ok(())
        },
    );

    let c = cache.clone();
    reg.register(
        "isspl.transpose_ifft_rows",
        move |ctx: &mut FnThreadCtx<'_>| {
            let input = ctx.inputs.first().ok_or("needs an input")?;
            if input.shape.len() != 2 {
                return Err(format!("expected a matrix stripe, got {:?}", input.shape));
            }
            let (r, cdim) = (input.shape[0], input.shape[1]);
            let data = from_bytes(&input.bytes);
            let mut t = vec![sage_signal::Complex32::ZERO; r * cdim];
            transpose_blocked(&data, &mut t, r, cdim, 32);
            c.get_dir(r, FftDirection::Inverse).process_rows(&mut t);
            ctx.outputs[0].bytes.copy_from_slice(as_bytes(&t));
            Ok(())
        },
    );

    reg.register("isspl.lowpass_mask", |ctx: &mut FnThreadCtx<'_>| {
        // Ideal low-pass over the (transposed) 2D spectrum: input local
        // stripe is rows `thread*rows..` of an [C, R] spectrum-transpose,
        // i.e. local row index maps to spectrum column kc and the position
        // within a row to spectrum row kr. Bins outside the `radius` box
        // (circularly) are zeroed.
        let radius = ctx.param_i64("radius").unwrap_or(8) as usize;
        let input = ctx.inputs.first().ok_or("needs an input")?;
        if input.shape.len() != 2 {
            return Err(format!("expected a matrix stripe, got {:?}", input.shape));
        }
        let (rows, cols) = (input.shape[0], input.shape[1]);
        let kc_total = rows * ctx.threads; // full C extent
        let kr_total = cols; // full R extent
        let kc0 = ctx.thread * rows;
        let data = from_bytes(&input.bytes);
        let mut out = data;
        for lr in 0..rows {
            let kc = kc0 + lr;
            let kc_fold = kc.min(kc_total - kc);
            for kr in 0..cols {
                let kr_fold = kr.min(kr_total - kr);
                if kc_fold > radius || kr_fold > radius {
                    out[lr * cols + kr] = sage_signal::Complex32::ZERO;
                }
            }
        }
        ctx.outputs[0].bytes.copy_from_slice(as_bytes(&out));
        Ok(())
    });

    reg.register("isspl.window_rows", |ctx: &mut FnThreadCtx<'_>| {
        let input = ctx.inputs.first().ok_or("needs an input")?;
        let cols = *input.shape.last().ok_or("scalar input")?;
        let coeffs = window_coefficients(WindowKind::Hamming, cols);
        let mut data = from_bytes(&input.bytes);
        for row in data.chunks_exact_mut(cols) {
            apply_window(row, &coeffs);
        }
        ctx.outputs[0].bytes.copy_from_slice(as_bytes(&data));
        Ok(())
    });

    reg.register("isspl.magnitude", |ctx: &mut FnThreadCtx<'_>| {
        let input = ctx.inputs.first().ok_or("needs an input")?;
        let data = from_bytes(&input.bytes);
        let out: Vec<sage_signal::Complex32> = data
            .iter()
            .map(|z| sage_signal::Complex32::new(z.norm_sqr(), 0.0))
            .collect();
        ctx.outputs[0].bytes.copy_from_slice(as_bytes(&out));
        Ok(())
    });

    reg.register("workload.bytes", |ctx: &mut FnThreadCtx<'_>| {
        // Dtype-agnostic deterministic source: every output stripe is
        // filled from a splitmix64 stream keyed on (seed, thread, port),
        // so any element type and striping produces the same bytes on
        // every backend. The fuzz corpus leans on this for non-complex
        // and oddly-striped sources `workload.matrix` cannot feed.
        let seed = ctx.param_i64("seed").unwrap_or(0) as u64;
        if ctx.outputs.is_empty() {
            return Err("workload.bytes needs an output".into());
        }
        for (oi, out) in ctx.outputs.iter_mut().enumerate() {
            let mut state = seed
                ^ (ctx.thread as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
                ^ ((oi as u64) << 17)
                ^ (u64::from(ctx.iteration) << 40);
            let mut next = move || {
                state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            for chunk in out.bytes.chunks_mut(8) {
                let word = next().to_le_bytes();
                chunk.copy_from_slice(&word[..chunk.len()]);
            }
        }
        Ok(())
    });

    reg.register("workload.splat", |ctx: &mut FnThreadCtx<'_>| {
        // Fan-out-tolerant pass-through: the input stripe is copied into
        // every output buffer (one logical buffer per consumer), which the
        // built-in one-in-one-out `id` refuses to do.
        let input = ctx.inputs.first().ok_or("workload.splat needs an input")?;
        if ctx.outputs.is_empty() {
            return Err("workload.splat needs an output".into());
        }
        for out in ctx.outputs.iter_mut() {
            if out.bytes.len() != input.bytes.len() {
                return Err(format!(
                    "output stripe of {} bytes does not match the {}-byte input",
                    out.bytes.len(),
                    input.bytes.len()
                ));
            }
            out.bytes.copy_from_slice(&input.bytes);
        }
        Ok(())
    });

    reg.register("workload.mix", |ctx: &mut FnThreadCtx<'_>| {
        // Feedback combiner: XORs the forward input with the feedback
        // input byte-wise into every output. With the feedback arriving
        // over a `delay` arc this is the minimal stateful loop body —
        // iteration i's output depends on iteration i-delay's — used by
        // the pipeline-safety fixtures and the fuzz corpus.
        if ctx.inputs.len() < 2 {
            return Err("workload.mix needs two inputs (forward, feedback)".into());
        }
        let (fwd, fb) = (&ctx.inputs[0], &ctx.inputs[1]);
        if fwd.bytes.len() != fb.bytes.len() {
            return Err(format!(
                "feedback stripe of {} bytes does not match the {}-byte input",
                fb.bytes.len(),
                fwd.bytes.len()
            ));
        }
        for out in ctx.outputs.iter_mut() {
            if out.bytes.len() != fwd.bytes.len() {
                return Err(format!(
                    "output stripe of {} bytes does not match the {}-byte input",
                    out.bytes.len(),
                    fwd.bytes.len()
                ));
            }
            for (o, (a, b)) in out
                .bytes
                .iter_mut()
                .zip(fwd.bytes.iter().zip(fb.bytes.iter()))
            {
                *o = a ^ b;
            }
        }
        Ok(())
    });
}

/// The software shelf describing these kernels with their cost models for a
/// `size x size` workload split over `threads` threads.
pub fn isspl_shelf(size: usize) -> SoftwareShelf {
    let mut shelf = SoftwareShelf::new();
    let to_cm = |k: cost::KernelCost| CostModel::new(k.flops, k.mem_bytes);
    shelf.add(ShelfFunction::new(
        "workload.matrix",
        "synthetic sensor matrix source",
        CostModel::ZERO,
    ));
    shelf.add(ShelfFunction::new(
        "isspl.fft_rows",
        "forward FFT of each matrix row",
        to_cm(cost::fft_rows_cost(size, size)),
    ));
    shelf.add(ShelfFunction::new(
        "isspl.transpose",
        "blocked matrix transpose (corner turn core)",
        to_cm(cost::transpose_cost(size, size)),
    ));
    shelf.add(ShelfFunction::new(
        "isspl.transpose_fft_rows",
        "local transpose + row FFTs (column FFT stage)",
        to_cm(cost::transpose_cost(size, size).plus(cost::fft_rows_cost(size, size))),
    ));
    shelf.add(ShelfFunction::new(
        "isspl.transpose_ifft_rows",
        "local transpose + inverse row FFTs",
        to_cm(cost::transpose_cost(size, size).plus(cost::fft_rows_cost(size, size))),
    ));
    shelf.add(ShelfFunction::new(
        "isspl.lowpass_mask",
        "ideal low-pass mask over the 2D spectrum",
        to_cm(cost::magnitude_cost(size * size)),
    ));
    shelf.add(ShelfFunction::new(
        "isspl.window_rows",
        "Hamming window per row",
        to_cm(cost::window_cost(size * size)),
    ));
    shelf.add(ShelfFunction::new(
        "isspl.magnitude",
        "element-wise detection power",
        to_cm(cost::magnitude_cost(size * size)),
    ));
    shelf.add(ShelfFunction::new(
        "workload.bytes",
        "dtype-agnostic seeded byte source",
        CostModel::ZERO,
    ));
    shelf.add(ShelfFunction::new(
        "workload.splat",
        "fan-out pass-through (one copy per consumer)",
        to_cm(cost::magnitude_cost(size * size)),
    ));
    shelf.add(ShelfFunction::new(
        "workload.mix",
        "feedback combiner (forward XOR delayed feedback)",
        to_cm(cost::magnitude_cost(size * size)),
    ));
    shelf
}

#[cfg(test)]
mod tests {
    use super::*;
    use sage_model::Properties;
    use sage_runtime::StripePayload;

    fn invoke(reg: &Registry, name: &str, ctx: &mut FnThreadCtx<'_>) {
        reg.get(name).unwrap().invoke(ctx).unwrap();
    }

    fn stripe(shape: Vec<usize>) -> StripePayload {
        StripePayload::zeroed(shape, 8)
    }

    #[test]
    fn workload_matrix_fills_thread_stripe() {
        let mut reg = Registry::new();
        register_kernels(&mut reg);
        let mut params = Properties::new();
        params.insert("seed".into(), sage_model::PropValue::Int(5));
        let mut outputs = vec![stripe(vec![2, 8])]; // thread 1 of 4 on 8x8
        let mut ctx = FnThreadCtx {
            fn_name: "src",
            thread: 1,
            threads: 4,
            iteration: 0,
            params: &params,
            inputs: &[],
            outputs: &mut outputs,
        };
        invoke(&reg, "workload.matrix", &mut ctx);
        let data = from_bytes(&outputs[0].bytes);
        assert_eq!(data[0], workload::sample(5, 2, 0));
        assert_eq!(data[9], workload::sample(5, 3, 1));
    }

    #[test]
    fn fft_rows_matches_signal_crate() {
        let mut reg = Registry::new();
        register_kernels(&mut reg);
        let raw = workload::input_stripe(1, 8, 0, 4);
        let mut input = stripe(vec![4, 8]);
        input.bytes.copy_from_slice(as_bytes(&raw));
        let mut outputs = vec![stripe(vec![4, 8])];
        let params = Properties::new();
        let mut ctx = FnThreadCtx {
            fn_name: "fft",
            thread: 0,
            threads: 1,
            iteration: 0,
            params: &params,
            inputs: std::slice::from_ref(&input),
            outputs: &mut outputs,
        };
        invoke(&reg, "isspl.fft_rows", &mut ctx);
        let mut expect = raw;
        Fft1d::new(8, FftDirection::Forward).process_rows(&mut expect);
        assert_eq!(from_bytes(&outputs[0].bytes), expect);
    }

    #[test]
    fn transpose_kernel_checks_shapes() {
        let mut reg = Registry::new();
        register_kernels(&mut reg);
        let raw = workload::input_stripe(1, 4, 0, 2); // 2x4
        let mut input = stripe(vec![2, 4]);
        input.bytes.copy_from_slice(as_bytes(&raw));
        let mut outputs = vec![stripe(vec![4, 2])];
        let params = Properties::new();
        let mut ctx = FnThreadCtx {
            fn_name: "t",
            thread: 0,
            threads: 1,
            iteration: 0,
            params: &params,
            inputs: std::slice::from_ref(&input),
            outputs: &mut outputs,
        };
        invoke(&reg, "isspl.transpose", &mut ctx);
        let got = from_bytes(&outputs[0].bytes);
        for r in 0..2 {
            for c in 0..4 {
                assert_eq!(got[c * 2 + r], raw[r * 4 + c]);
            }
        }
        // Wrong output shape is rejected.
        let mut bad = vec![stripe(vec![2, 4])];
        let mut ctx = FnThreadCtx {
            fn_name: "t",
            thread: 0,
            threads: 1,
            iteration: 0,
            params: &params,
            inputs: std::slice::from_ref(&input),
            outputs: &mut bad,
        };
        assert!(reg
            .get("isspl.transpose")
            .unwrap()
            .invoke(&mut ctx)
            .is_err());
    }

    #[test]
    fn shelf_has_cost_models() {
        let shelf = isspl_shelf(256);
        assert!(shelf.get("isspl.fft_rows").unwrap().cost_on("CSPI").flops > 0.0);
        assert_eq!(
            shelf.get("isspl.transpose").unwrap().cost_on("*").flops,
            0.0
        );
        assert!(shelf.get("isspl.transpose").unwrap().cost_on("*").mem_bytes > 0.0);
        assert_eq!(shelf.len(), 11);
    }

    #[test]
    fn workload_mix_xors_forward_with_feedback() {
        let mut reg = Registry::new();
        register_kernels(&mut reg);
        let params = Properties::new();
        let mut fwd = stripe(vec![2, 2]);
        fwd.bytes.copy_from_slice(&[0xF0; 32]);
        let mut fb = stripe(vec![2, 2]);
        fb.bytes.copy_from_slice(&[0x0F; 32]);
        let inputs = vec![fwd, fb];
        let mut outputs = vec![stripe(vec![2, 2])];
        let mut ctx = FnThreadCtx {
            fn_name: "m",
            thread: 0,
            threads: 1,
            iteration: 0,
            params: &params,
            inputs: &inputs,
            outputs: &mut outputs,
        };
        invoke(&reg, "workload.mix", &mut ctx);
        assert!(outputs[0].bytes.iter().all(|&b| b == 0xFF));

        // A feedback stripe of the wrong size is a typed kernel error.
        let mut short = stripe(vec![2, 2]);
        short.bytes.copy_from_slice(&[0x0F; 32]);
        short.bytes.to_mut().truncate(16);
        let inputs = vec![stripe(vec![2, 2]), short];
        let mut outputs = vec![stripe(vec![2, 2])];
        let mut ctx = FnThreadCtx {
            fn_name: "m",
            thread: 0,
            threads: 1,
            iteration: 0,
            params: &params,
            inputs: &inputs,
            outputs: &mut outputs,
        };
        assert!(reg.get("workload.mix").unwrap().invoke(&mut ctx).is_err());
    }
}
