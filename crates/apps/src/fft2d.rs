//! The **Parallel 2D FFT** benchmark (paper §3.1), in both forms.
//!
//! Decomposition (standard transpose algorithm): each node FFTs its row
//! stripe, the matrix is corner-turned (all-to-all), and each node FFTs its
//! stripe of the transposed matrix. The distributed output is therefore the
//! **transposed** 2D FFT, which [`crate::workload`] provides a reference
//! for.

use crate::dist::{pack_tiles, unpack_transpose};
use crate::kernels::register_kernels;
use crate::workload;
use sage_core::{Placement, Project, ProjectError};
use sage_fabric::{Cluster, FabricMetrics, MachineSpec, TimePolicy, Work};
use sage_model::{AppGraph, Block, CostModel, DataType, HardwareShelf, Port, PropValue, Striping};
use sage_mpi::{Communicator, MpiConfig};
use sage_runtime::RuntimeOptions;
use sage_signal::complex::{as_bytes, from_bytes};
use sage_signal::cost;
use sage_signal::fft::{Fft1d, FftDirection};
use sage_signal::Matrix;
use std::time::Duration;

/// The outcome of one distributed run (either form).
#[derive(Debug)]
pub struct DistRun {
    /// Virtual seconds per iteration (0 in real-time mode).
    pub per_iter_secs: f64,
    /// Total virtual makespan.
    pub makespan: f64,
    /// Host wall-clock time.
    pub wall: Duration,
    /// Assembled result of the final iteration (the transposed 2D FFT).
    pub result: Matrix,
    /// Per-node fabric counters (traffic, faults, retries, lost time).
    pub metrics: FabricMetrics,
}

/// Default workload seed (the benchmark data set identity).
pub const SEED: u64 = 0x5A6E;

/// Builds the SAGE Designer model of the parallel 2D FFT on `threads`
/// threads over a `size x size` complex matrix.
pub fn sage_model(size: usize, threads: usize) -> AppGraph {
    assert!(size.is_power_of_two(), "benchmark sizes are powers of two");
    assert_eq!(size % threads, 0);
    let mat = DataType::complex_matrix(size, size);
    let mat_t = DataType::complex_matrix(size, size); // square: same type
    let mut g = AppGraph::new(format!("parallel_2d_fft_{size}"));
    let to_cm = |k: cost::KernelCost| CostModel::new(k.flops, k.mem_bytes);

    let src = g.add_block(
        Block::source_threaded(
            "src",
            threads,
            vec![Port::output("out", mat.clone(), Striping::BY_ROWS)],
        )
        .with_prop("kernel", PropValue::Str("workload.matrix".into()))
        .with_prop("seed", PropValue::Int(SEED as i64)),
    );
    let fftr = g.add_block(Block::primitive(
        "row_fft",
        "isspl.fft_rows",
        threads,
        to_cm(cost::fft_rows_cost(size, size)),
        vec![
            Port::input("in", mat.clone(), Striping::BY_ROWS),
            Port::output("out", mat.clone(), Striping::BY_ROWS),
        ],
    ));
    let fftc = g.add_block(Block::primitive(
        "col_fft",
        "isspl.transpose_fft_rows",
        threads,
        to_cm(cost::transpose_cost(size, size).plus(cost::fft_rows_cost(size, size))),
        vec![
            Port::input("in", mat.clone(), Striping::BY_COLS),
            Port::output("out", mat_t.clone(), Striping::BY_ROWS),
        ],
    ));
    let snk = g.add_block(Block::sink_threaded(
        "snk",
        threads,
        vec![Port::input("in", mat_t, Striping::BY_ROWS)],
    ));
    g.connect(src, "out", fftr, "in").expect("model wiring");
    g.connect(fftr, "out", fftc, "in").expect("model wiring");
    g.connect(fftc, "out", snk, "in").expect("model wiring");
    g
}

/// Builds the full project (model + CSPI hardware + kernels) for `nodes`
/// nodes.
pub fn sage_project(size: usize, nodes: usize) -> Project {
    let mut p = Project::new(
        sage_model(size, nodes),
        HardwareShelf::cspi_with_nodes(nodes),
    );
    register_kernels(&mut p.registry);
    p
}

/// Runs the SAGE auto-generated form.
pub fn run_sage(
    size: usize,
    nodes: usize,
    policy: TimePolicy,
    options: &RuntimeOptions,
    iterations: u32,
) -> DistRun {
    try_run_sage(size, nodes, policy, options, iterations).expect("execution")
}

/// Fallible variant of [`run_sage`]: surfaces injected-fault failures (via
/// `RuntimeOptions::with_faults`) as structured [`ProjectError`]s instead of
/// panicking, so chaos tests can distinguish a typed failure from silent
/// corruption.
pub fn try_run_sage(
    size: usize,
    nodes: usize,
    policy: TimePolicy,
    options: &RuntimeOptions,
    iterations: u32,
) -> Result<DistRun, ProjectError> {
    let project = sage_project(size, nodes);
    let (program, _src) = project.generate(&Placement::Aligned)?;
    let exec = project.execute(&program, policy, options, iterations)?;
    // The sink is the last function in topological order.
    let sink_id = (program.functions.len() - 1) as u32;
    let bytes = exec
        .results
        .assemble(&program, sink_id, iterations - 1)
        .expect("sink result");
    Ok(DistRun {
        per_iter_secs: exec.secs_per_iteration(),
        makespan: exec.report.makespan,
        wall: exec.report.wall,
        result: Matrix::from_vec(size, size, from_bytes(&bytes)),
        metrics: exec.report.metrics,
    })
}

/// Runs the hand-coded MPI form on the same machine model.
pub fn run_hand_coded(size: usize, nodes: usize, policy: TimePolicy, iterations: u32) -> DistRun {
    assert_eq!(size % nodes, 0);
    let machine = MachineSpec::from_hardware(&HardwareShelf::cspi_with_nodes(nodes));
    let cluster = Cluster::new(machine, policy);
    let rl = size / nodes; // local rows before the turn
    let cl = size / nodes; // local rows after (square matrix)
    let fft_cols = Fft1d::new(size, FftDirection::Forward);

    let (stripes, report) = cluster.run(|ctx| {
        let me = ctx.id();
        let n = ctx.nodes();
        let mut comm = Communicator::new(ctx, MpiConfig::vendor_tuned());
        let mut last = Vec::new();
        for _iter in 0..iterations {
            // Input stripe arrives resident (same convention as the SAGE
            // source kernel: generation is not part of the measured work).
            let mut local = workload::input_stripe(SEED, size, me * rl, rl);
            // Row FFTs.
            let c = cost::fft_rows_cost(rl, size);
            comm.ctx().compute(Work {
                flops: c.flops,
                mem_bytes: c.mem_bytes,
                overhead_secs: 0.0,
            });
            fft_cols.process_rows(&mut local);
            // Pack tiles (one explicit copy of the stripe).
            comm.ctx().compute(Work::copy(local.len() * 8));
            let blocks = pack_tiles(&local, rl, size, n);
            // The vendor-tuned MPI_All_to_All.
            let tiles = comm.alltoall_tuned(&blocks);
            // Transposing unpack.
            let t = cost::transpose_cost(cl, size);
            comm.ctx().compute(Work {
                flops: t.flops,
                mem_bytes: t.mem_bytes,
                overhead_secs: 0.0,
            });
            let mut turned = unpack_transpose(&tiles, rl, cl, size);
            // Column FFTs (rows of the transposed stripe).
            let c = cost::fft_rows_cost(cl, size);
            comm.ctx().compute(Work {
                flops: c.flops,
                mem_bytes: c.mem_bytes,
                overhead_secs: 0.0,
            });
            fft_cols.process_rows(&mut turned);
            last = turned;
        }
        as_bytes(&last).to_vec()
    });

    // Assemble: rank me holds rows me*cl.. of the transposed result.
    let mut full = Vec::with_capacity(size * size);
    for s in &stripes {
        full.extend(from_bytes(s));
    }
    DistRun {
        per_iter_secs: if iterations > 0 {
            report.makespan / iterations as f64
        } else {
            0.0
        },
        makespan: report.makespan,
        wall: report.wall,
        result: Matrix::from_vec(size, size, full),
        metrics: report.metrics,
    }
}

/// Relative error of a run's result against the serial reference.
pub fn verify(run: &DistRun, size: usize) -> f32 {
    let reference = workload::fft2d_reference_transposed(&workload::input_matrix(SEED, size));
    workload::relative_error(&reference, &run.result)
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f32 = 2e-3;

    #[test]
    fn hand_coded_matches_reference() {
        let run = run_hand_coded(32, 4, TimePolicy::Virtual, 1);
        assert!(verify(&run, 32) < TOL, "err {}", verify(&run, 32));
        assert!(run.makespan > 0.0);
    }

    #[test]
    fn sage_matches_reference() {
        let run = run_sage(
            32,
            4,
            TimePolicy::Virtual,
            &RuntimeOptions::paper_faithful(),
            1,
        );
        assert!(verify(&run, 32) < TOL, "err {}", verify(&run, 32));
    }

    #[test]
    fn sage_and_hand_agree_bitwise() {
        // Same kernels, same exchange: the two forms should agree to
        // rounding (identical operation order per element in fact).
        let a = run_sage(
            16,
            2,
            TimePolicy::Virtual,
            &RuntimeOptions::paper_faithful(),
            1,
        );
        let b = run_hand_coded(16, 2, TimePolicy::Virtual, 1);
        assert_eq!(a.result.max_abs_diff(&b.result), 0.0);
    }

    #[test]
    fn sage_is_slower_but_comparable() {
        let sage = run_sage(
            64,
            4,
            TimePolicy::Virtual,
            &RuntimeOptions::paper_faithful(),
            2,
        );
        let hand = run_hand_coded(64, 4, TimePolicy::Virtual, 2);
        let pct = hand.per_iter_secs / sage.per_iter_secs;
        assert!(pct < 1.0, "SAGE should carry overhead (pct={pct})");
        assert!(pct > 0.5, "SAGE should stay comparable (pct={pct})");
    }

    #[test]
    fn real_mode_also_verifies() {
        let run = run_sage(16, 2, TimePolicy::Real, &RuntimeOptions::optimized(), 1);
        assert!(verify(&run, 16) < TOL);
    }

    #[test]
    fn model_flattens_and_validates() {
        let m = sage_model(64, 8);
        let flat = m.flatten().unwrap();
        assert!(sage_model::validate(&flat).is_ok());
        assert_eq!(flat.block_count(), 4);
        assert_eq!(flat.connections().len(), 3);
    }
}
