//! A SAR-style range-doppler imaging pipeline — raw echo matrix in,
//! range-doppler power map out.
//!
//! Data is a `fast-time x slow-time` complex echo matrix (one row per
//! pulse). The classic range-doppler algorithm: transform each pulse to
//! the range-frequency domain, multiply by the pulse reference (here a
//! band-limiting mask stands in for the matched filter), corner-turn and
//! FFT along slow time to resolve doppler, then detect power:
//!
//! source → range FFT → reference multiply (mask) → corner turn +
//! doppler FFT → power (magnitude) → sink.
//!
//! Five compute stages with one full distributed corner turn between the
//! range and doppler dimensions — the canonical 2-D pattern the paper's
//! Table 1.0 benchmarks isolate, embedded in a real imaging chain.

use crate::fft2d::SEED;
use crate::kernels::register_kernels;
use sage_core::Project;
use sage_model::{AppGraph, Block, CostModel, DataType, HardwareShelf, Port, PropValue, Striping};
use sage_signal::cost;

/// Builds the range-doppler Designer model for a `size x size` echo frame
/// striped over `threads` threads. `radius` is the reference-function
/// bandwidth (in bins) kept by the matched-filter surrogate.
pub fn sage_model(size: usize, threads: usize, radius: usize) -> AppGraph {
    assert!(size.is_power_of_two());
    assert_eq!(size % threads, 0);
    let mat = DataType::complex_matrix(size, size);
    let to_cm = |k: cost::KernelCost| CostModel::new(k.flops, k.mem_bytes);
    let mut g = AppGraph::new(format!("range_doppler_{size}"));

    let src = g.add_block(
        Block::source_threaded(
            "echoes",
            threads,
            vec![Port::output("out", mat.clone(), Striping::BY_ROWS)],
        )
        .with_prop("kernel", PropValue::Str("workload.matrix".into()))
        .with_prop("seed", PropValue::Int(SEED as i64)),
    );
    let rfft = g.add_block(Block::primitive(
        "range_fft",
        "isspl.fft_rows",
        threads,
        to_cm(cost::fft_rows_cost(size, size)),
        vec![
            Port::input("in", mat.clone(), Striping::BY_ROWS),
            Port::output("out", mat.clone(), Striping::BY_ROWS),
        ],
    ));
    let reference = g.add_block(
        Block::primitive(
            "range_ref",
            "isspl.lowpass_mask",
            threads,
            to_cm(cost::magnitude_cost(size * size)),
            vec![
                Port::input("in", mat.clone(), Striping::BY_ROWS),
                Port::output("out", mat.clone(), Striping::BY_ROWS),
            ],
        )
        .with_prop("radius", PropValue::Int(radius as i64)),
    );
    let doppler = g.add_block(Block::primitive(
        "doppler_fft",
        "isspl.transpose_fft_rows",
        threads,
        to_cm(cost::transpose_cost(size, size).plus(cost::fft_rows_cost(size, size))),
        vec![
            Port::input("in", mat.clone(), Striping::BY_COLS),
            Port::output("out", mat.clone(), Striping::BY_ROWS),
        ],
    ));
    let map = g.add_block(Block::primitive(
        "rd_map",
        "isspl.magnitude",
        threads,
        to_cm(cost::magnitude_cost(size * size)),
        vec![
            Port::input("in", mat.clone(), Striping::BY_ROWS),
            Port::output("out", mat.clone(), Striping::BY_ROWS),
        ],
    ));
    let snk = g.add_block(Block::sink_threaded(
        "image",
        threads,
        vec![Port::input("in", mat, Striping::BY_ROWS)],
    ));
    g.connect(src, "out", rfft, "in").expect("wiring");
    g.connect(rfft, "out", reference, "in").expect("wiring");
    g.connect(reference, "out", doppler, "in").expect("wiring");
    g.connect(doppler, "out", map, "in").expect("wiring");
    g.connect(map, "out", snk, "in").expect("wiring");
    g
}

/// Builds the project on a CSPI machine.
pub fn sage_project(size: usize, nodes: usize) -> Project {
    let mut p = Project::new(
        sage_model(size, nodes, size / 4),
        HardwareShelf::cspi_with_nodes(nodes),
    );
    register_kernels(&mut p.registry);
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use sage_core::Placement;
    use sage_fabric::TimePolicy;
    use sage_runtime::RuntimeOptions;

    #[test]
    fn model_validates() {
        let m = sage_model(32, 4, 8);
        assert_eq!(m.block_count(), 6);
        assert!(sage_model::validate(&m).is_ok());
    }

    #[test]
    fn pipeline_produces_a_power_map() {
        let p = sage_project(16, 2);
        let (exec, _) = p
            .run(
                &Placement::Aligned,
                TimePolicy::Virtual,
                &RuntimeOptions::paper_faithful(),
                1,
            )
            .unwrap();
        let (program, _) = p.generate(&Placement::Aligned).unwrap();
        let sink_id = (program.functions.len() - 1) as u32;
        let bytes = exec.results.assemble(&program, sink_id, 0).unwrap();
        let data = sage_signal::complex::from_bytes(&bytes);
        // The range-doppler map is power: real, non-negative, not silent.
        assert!(data.iter().all(|z| z.im == 0.0 && z.re >= 0.0));
        assert!(data.iter().any(|z| z.re > 0.0));
        // The reference mask must actually cut something: with a band
        // limit of size/4 bins some doppler cells are exactly zero.
        assert!(data.iter().any(|z| z.re == 0.0));
    }
}
