//! Frequency-domain image filtering — a computer-vision/image-processing
//! application (the second domain the paper's introduction motivates).
//!
//! The pipeline low-passes a complex "image" through the 2D frequency
//! domain: forward 2D FFT (row FFTs + corner turn + row FFTs), an ideal
//! low-pass mask, then the inverse transform (two more corner-turn +
//! inverse-FFT stages). Seven functions, **three** distributed corner turns
//! — a much deeper exercise of the striping engine than the Table 1.0
//! benchmarks.
//!
//! Orientation bookkeeping (square `N x N`): the forward half leaves the
//! spectrum transposed; the two inverse stages each transpose again, so the
//! final sink payload is the **transposed** filtered image.

use crate::fft2d::SEED;
use crate::kernels::register_kernels;
use crate::workload;
use sage_core::{Placement, Project};
use sage_fabric::TimePolicy;
use sage_model::{AppGraph, Block, CostModel, DataType, HardwareShelf, Port, PropValue, Striping};
use sage_runtime::RuntimeOptions;
use sage_signal::cost;
use sage_signal::fft::{Fft1d, FftDirection};
use sage_signal::Matrix;

/// Builds the Designer model of the frequency-domain low-pass filter.
pub fn sage_model(size: usize, threads: usize, radius: usize) -> AppGraph {
    assert!(size.is_power_of_two());
    assert_eq!(size % threads, 0);
    let mat = DataType::complex_matrix(size, size);
    let mut g = AppGraph::new(format!("image_lowpass_{size}"));
    let to_cm = |k: cost::KernelCost| CostModel::new(k.flops, k.mem_bytes);
    let fft_cost = to_cm(cost::transpose_cost(size, size).plus(cost::fft_rows_cost(size, size)));

    let src = g.add_block(
        Block::source_threaded(
            "image",
            threads,
            vec![Port::output("out", mat.clone(), Striping::BY_ROWS)],
        )
        .with_prop("kernel", PropValue::Str("workload.matrix".into()))
        .with_prop("seed", PropValue::Int(SEED as i64)),
    );
    let fr = g.add_block(Block::primitive(
        "row_fft",
        "isspl.fft_rows",
        threads,
        to_cm(cost::fft_rows_cost(size, size)),
        vec![
            Port::input("in", mat.clone(), Striping::BY_ROWS),
            Port::output("out", mat.clone(), Striping::BY_ROWS),
        ],
    ));
    let fc = g.add_block(Block::primitive(
        "col_fft",
        "isspl.transpose_fft_rows",
        threads,
        fft_cost,
        vec![
            Port::input("in", mat.clone(), Striping::BY_COLS),
            Port::output("out", mat.clone(), Striping::BY_ROWS),
        ],
    ));
    let mask = g.add_block(
        Block::primitive(
            "lowpass",
            "isspl.lowpass_mask",
            threads,
            to_cm(cost::magnitude_cost(size * size)),
            vec![
                Port::input("in", mat.clone(), Striping::BY_ROWS),
                Port::output("out", mat.clone(), Striping::BY_ROWS),
            ],
        )
        .with_prop("radius", PropValue::Int(radius as i64)),
    );
    let ic1 = g.add_block(Block::primitive(
        "irow_fft",
        "isspl.transpose_ifft_rows",
        threads,
        fft_cost,
        vec![
            Port::input("in", mat.clone(), Striping::BY_COLS),
            Port::output("out", mat.clone(), Striping::BY_ROWS),
        ],
    ));
    let ic2 = g.add_block(Block::primitive(
        "icol_fft",
        "isspl.transpose_ifft_rows",
        threads,
        fft_cost,
        vec![
            Port::input("in", mat.clone(), Striping::BY_COLS),
            Port::output("out", mat.clone(), Striping::BY_ROWS),
        ],
    ));
    let snk = g.add_block(Block::sink_threaded(
        "filtered",
        threads,
        vec![Port::input("in", mat, Striping::BY_ROWS)],
    ));
    g.connect(src, "out", fr, "in").expect("wiring");
    g.connect(fr, "out", fc, "in").expect("wiring");
    g.connect(fc, "out", mask, "in").expect("wiring");
    g.connect(mask, "out", ic1, "in").expect("wiring");
    g.connect(ic1, "out", ic2, "in").expect("wiring");
    g.connect(ic2, "out", snk, "in").expect("wiring");
    g
}

/// Project on a CSPI machine with the kernels registered.
pub fn sage_project(size: usize, nodes: usize, radius: usize) -> Project {
    let mut p = Project::new(
        sage_model(size, nodes, radius),
        HardwareShelf::cspi_with_nodes(nodes),
    );
    register_kernels(&mut p.registry);
    p
}

/// Runs the pipeline and returns the (transposed) filtered image.
pub fn run_sage(
    size: usize,
    nodes: usize,
    radius: usize,
    options: &RuntimeOptions,
    iterations: u32,
) -> Matrix {
    let project = sage_project(size, nodes, radius);
    let (program, _) = project.generate(&Placement::Aligned).expect("codegen");
    let exec = project
        .execute(&program, TimePolicy::Virtual, options, iterations)
        .expect("execution");
    let sink_id = (program.functions.len() - 1) as u32;
    let bytes = exec
        .results
        .assemble(&program, sink_id, iterations - 1)
        .expect("sink result");
    Matrix::from_vec(size, size, sage_signal::complex::from_bytes(&bytes))
}

/// Serial reference: 2D FFT → ideal low-pass → inverse 2D FFT, returned
/// transposed to match the distributed pipeline's orientation.
pub fn reference(size: usize, radius: usize) -> Matrix {
    let input = workload::input_matrix(SEED, size);
    let fwd = Fft1d::new(size, FftDirection::Forward);
    let inv = Fft1d::new(size, FftDirection::Inverse);
    // Forward 2D FFT.
    let mut work = input.clone();
    fwd.process_rows(work.as_mut_slice());
    let mut spec = work.transposed();
    fwd.process_rows(spec.as_mut_slice());
    // spec is F^T: spec[kc][kr]. Mask circularly.
    for kc in 0..size {
        let kcf = kc.min(size - kc);
        for kr in 0..size {
            let krf = kr.min(size - kr);
            if kcf > radius || krf > radius {
                spec.set(kc, kr, sage_signal::Complex32::ZERO);
            }
        }
    }
    // Inverse: IFFT rows of spec^T twice with transposes, mirroring the
    // distributed stages: D = IFFT_dim1(M.F) from spec^T.
    let mut d = spec.transposed(); // [R, C] = M.F
    inv.process_rows(d.as_mut_slice()); // IFFT along dim1
    let mut out = d.transposed(); // [C, R]
    inv.process_rows(out.as_mut_slice()); // IFFT along dim0 (as rows)
    out // (filtered image)^T
}

/// Relative error between the distributed run and the reference.
pub fn verify(result: &Matrix, size: usize, radius: usize) -> f32 {
    workload::relative_error(&reference(size, radius), result)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filtered_image_matches_reference() {
        let out = run_sage(32, 4, 4, &RuntimeOptions::paper_faithful(), 1);
        let err = verify(&out, 32, 4);
        assert!(err < 2e-3, "relative error {err}");
    }

    #[test]
    fn mask_actually_removes_energy() {
        let narrow = run_sage(32, 2, 1, &RuntimeOptions::optimized(), 1);
        let wide = run_sage(32, 2, 16, &RuntimeOptions::optimized(), 1);
        assert!(narrow.norm() < wide.norm());
        // Radius >= size/2 keeps everything: output ~= input (transposed).
        let input_t = workload::input_matrix(SEED, 32).transposed();
        assert!(workload::relative_error(&input_t, &wide) < 2e-3);
    }

    #[test]
    fn model_has_three_corner_turns() {
        let m = sage_model(64, 8, 8);
        let flat = m.flatten().unwrap();
        let turns = flat
            .connections()
            .iter()
            .filter(|c| {
                let sp = flat.port_at(c.from).unwrap().striping;
                let sc = flat.port_at(c.to).unwrap().striping;
                sp != sc
            })
            .count();
        assert_eq!(turns, 3);
        assert!(sage_model::validate(&flat).is_ok());
    }

    #[test]
    fn works_across_node_counts() {
        let a = run_sage(32, 1, 3, &RuntimeOptions::paper_faithful(), 1);
        let b = run_sage(32, 8, 3, &RuntimeOptions::paper_faithful(), 1);
        assert!(a.max_abs_diff(&b) < 1e-5);
    }
}
