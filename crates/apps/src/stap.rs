//! A STAP-flavoured radar pipeline — the application domain the paper's
//! introduction motivates ("radar, signal and image processing") and the
//! subject of its first citation (West & Antonio's STAP communication
//! study). Deeper than the two benchmarks, it exercises hierarchical
//! blocks, a corner turn in the middle of a chain, and AToT mapping.
//!
//! Pipeline: source → [front end: Hamming window → range FFT] → corner
//! turn + Doppler FFT → detection power → sink.

use crate::fft2d::SEED;
use crate::kernels::register_kernels;
use sage_core::Project;
use sage_model::{AppGraph, Block, CostModel, DataType, HardwareShelf, Port, PropValue, Striping};
use sage_signal::cost;

/// Builds the STAP-like Designer model: a hierarchical `front_end` block
/// containing window + range FFT, followed by the corner-turn/Doppler stage
/// and a detector.
pub fn sage_model(size: usize, threads: usize) -> AppGraph {
    assert!(size.is_power_of_two());
    assert_eq!(size % threads, 0);
    let mat = DataType::complex_matrix(size, size);
    let to_cm = |k: cost::KernelCost| CostModel::new(k.flops, k.mem_bytes);

    // Inner graph of the hierarchical front end.
    let mut front = AppGraph::new("front_end_impl");
    let win = front.add_block(Block::primitive(
        "window",
        "isspl.window_rows",
        threads,
        to_cm(cost::window_cost(size * size)),
        vec![
            Port::input("in", mat.clone(), Striping::BY_ROWS),
            Port::output("mid", mat.clone(), Striping::BY_ROWS),
        ],
    ));
    let rfft = front.add_block(Block::primitive(
        "range_fft",
        "isspl.fft_rows",
        threads,
        to_cm(cost::fft_rows_cost(size, size)),
        vec![
            Port::input("mid_in", mat.clone(), Striping::BY_ROWS),
            Port::output("out", mat.clone(), Striping::BY_ROWS),
        ],
    ));
    front.connect(win, "mid", rfft, "mid_in").expect("wiring");

    let mut g = AppGraph::new(format!("stap_pipeline_{size}"));
    let src = g.add_block(
        Block::source_threaded(
            "sensor",
            threads,
            vec![Port::output("out", mat.clone(), Striping::BY_ROWS)],
        )
        .with_prop("kernel", PropValue::Str("workload.matrix".into()))
        .with_prop("seed", PropValue::Int(SEED as i64)),
    );
    let fe = g.add_block(Block::hierarchical(
        "front_end",
        front,
        vec![
            Port::input("in", mat.clone(), Striping::BY_ROWS),
            Port::output("out", mat.clone(), Striping::BY_ROWS),
        ],
    ));
    let doppler = g.add_block(Block::primitive(
        "doppler",
        "isspl.transpose_fft_rows",
        threads,
        to_cm(cost::transpose_cost(size, size).plus(cost::fft_rows_cost(size, size))),
        vec![
            Port::input("in", mat.clone(), Striping::BY_COLS),
            Port::output("out", mat.clone(), Striping::BY_ROWS),
        ],
    ));
    let detect = g.add_block(Block::primitive(
        "detect",
        "isspl.magnitude",
        threads,
        to_cm(cost::magnitude_cost(size * size)),
        vec![
            Port::input("in", mat.clone(), Striping::BY_ROWS),
            Port::output("out", mat.clone(), Striping::BY_ROWS),
        ],
    ));
    let snk = g.add_block(Block::sink_threaded(
        "reports",
        threads,
        vec![Port::input("in", mat, Striping::BY_ROWS)],
    ));
    g.connect(src, "out", fe, "in").expect("wiring");
    g.connect(fe, "out", doppler, "in").expect("wiring");
    g.connect(doppler, "out", detect, "in").expect("wiring");
    g.connect(detect, "out", snk, "in").expect("wiring");
    g
}

/// Builds the project on a CSPI machine.
pub fn sage_project(size: usize, nodes: usize) -> Project {
    let mut p = Project::new(
        sage_model(size, nodes),
        HardwareShelf::cspi_with_nodes(nodes),
    );
    register_kernels(&mut p.registry);
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use sage_core::Placement;
    use sage_fabric::TimePolicy;
    use sage_runtime::RuntimeOptions;

    #[test]
    fn model_flattens_through_hierarchy() {
        let m = sage_model(32, 4);
        let flat = m.flatten().unwrap();
        assert_eq!(flat.block_count(), 6); // src, window, range_fft, doppler, detect, sink
        assert!(sage_model::validate(&flat).is_ok());
        let names: Vec<&str> = flat.blocks().iter().map(|b| b.name.as_str()).collect();
        assert!(names.contains(&"front_end.window"));
        assert!(names.contains(&"front_end.range_fft"));
    }

    #[test]
    fn pipeline_executes_and_detects_power() {
        let p = sage_project(16, 2);
        let (exec, _) = p
            .run(
                &Placement::Aligned,
                TimePolicy::Virtual,
                &RuntimeOptions::paper_faithful(),
                1,
            )
            .unwrap();
        let (program, _) = p.generate(&Placement::Aligned).unwrap();
        let sink_id = (program.functions.len() - 1) as u32;
        let bytes = exec.results.assemble(&program, sink_id, 0).unwrap();
        let data = sage_signal::complex::from_bytes(&bytes);
        // Detection output is power: all real, non-negative, not all zero.
        assert!(data.iter().all(|z| z.im == 0.0 && z.re >= 0.0));
        assert!(data.iter().any(|z| z.re > 0.0));
    }

    #[test]
    fn atot_maps_the_pipeline() {
        let p = sage_project(16, 2);
        let mapping = p
            .auto_map(&sage_atot::GaConfig {
                population: 12,
                generations: 8,
                ..Default::default()
            })
            .unwrap();
        let (exec, _) = p
            .run(
                &Placement::Tasks(mapping),
                TimePolicy::Virtual,
                &RuntimeOptions::optimized(),
                1,
            )
            .unwrap();
        assert!(exec.report.makespan > 0.0);
    }
}
