//! The paper's §3.3 measurement procedure, producing Table 1.0 cells.
//!
//! "each node configuration and mapping will be executed ten times where
//! each execution consists of a 100 iterations. ... The final performance
//! number for that execution will average the 100*10 results into a final
//! average result." Virtual time is deterministic, so by default we run a
//! reduced repetition count; set the environment variable
//! `SAGE_FULL_ITERS=1` to reproduce the full 10x100 procedure.

use crate::{corner_turn, fft2d};
use sage_fabric::TimePolicy;
use sage_runtime::RuntimeOptions;

/// Which benchmark application a cell measures.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BenchApp {
    /// Parallel 2D FFT.
    Fft2d,
    /// Distributed corner turn.
    CornerTurn,
}

impl BenchApp {
    /// Display name matching the paper's table.
    pub fn name(self) -> &'static str {
        match self {
            BenchApp::Fft2d => "2D FFT",
            BenchApp::CornerTurn => "Corner Turn",
        }
    }
}

/// One cell of Table 1.0: a (application, array size, node count) point.
#[derive(Clone, Debug)]
pub struct Table1Cell {
    /// Application.
    pub app: BenchApp,
    /// Array edge (the paper's 256/512/1024).
    pub size: usize,
    /// Processing nodes.
    pub nodes: usize,
    /// Hand-coded seconds per data set.
    pub hand_secs: f64,
    /// SAGE auto-generated seconds per data set.
    pub sage_secs: f64,
}

impl Table1Cell {
    /// "% of hand coded": hand time over SAGE time, as a percentage (100 =
    /// parity; smaller = more SAGE overhead), matching the paper's column.
    pub fn pct_of_hand(&self) -> f64 {
        100.0 * self.hand_secs / self.sage_secs
    }

    /// SAGE overhead relative to hand-coded, as a fraction.
    pub fn overhead(&self) -> f64 {
        self.sage_secs / self.hand_secs - 1.0
    }
}

/// The repetition schedule: (executions, iterations per execution).
pub fn repetitions() -> (u32, u32) {
    if std::env::var("SAGE_FULL_ITERS").is_ok() {
        (10, 100) // the paper's full procedure
    } else {
        (2, 5)
    }
}

/// Measures one Table 1.0 cell in deterministic virtual time on the CSPI
/// platform model.
pub fn table1_cell(
    app: BenchApp,
    size: usize,
    nodes: usize,
    options: &RuntimeOptions,
) -> Table1Cell {
    let (execs, iters) = repetitions();
    let mut hand_total = 0.0;
    let mut sage_total = 0.0;
    for _ in 0..execs {
        let (hand, sage) = match app {
            BenchApp::Fft2d => (
                fft2d::run_hand_coded(size, nodes, TimePolicy::Virtual, iters),
                fft2d::run_sage(size, nodes, TimePolicy::Virtual, options, iters),
            ),
            BenchApp::CornerTurn => (
                corner_turn::run_hand_coded(size, nodes, TimePolicy::Virtual, iters),
                corner_turn::run_sage(size, nodes, TimePolicy::Virtual, options, iters),
            ),
        };
        hand_total += hand.per_iter_secs;
        sage_total += sage.per_iter_secs;
    }
    Table1Cell {
        app,
        size,
        nodes,
        hand_secs: hand_total / execs as f64,
        sage_secs: sage_total / execs as f64,
    }
}

/// The full Table 1.0 sweep: both applications, array sizes
/// 256/512/1024, node counts 4 and 8 (plus the §3.4 two-node
/// configuration when `include_two_nodes` is set).
pub fn table1_sweep(
    sizes: &[usize],
    node_counts: &[usize],
    options: &RuntimeOptions,
) -> Vec<Table1Cell> {
    let mut cells = Vec::new();
    for &nodes in node_counts {
        for app in [BenchApp::Fft2d, BenchApp::CornerTurn] {
            for &size in sizes {
                cells.push(table1_cell(app, size, nodes, options));
            }
        }
    }
    cells
}

/// Renders cells in the paper's Table 1.0 layout, with per-application and
/// cumulative averages.
pub fn render_table1(cells: &[Table1Cell]) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:<6} {:<12} {:>11} {:>16} {:>16} {:>14}",
        "Nodes", "Application", "Array Size", "Hand Coded (ms)", "SAGE AutoGen (ms)", "% of Hand"
    );
    let mut nodes_seen: Vec<usize> = cells.iter().map(|c| c.nodes).collect();
    nodes_seen.dedup();
    for c in cells {
        let _ = writeln!(
            s,
            "{:<6} {:<12} {:>7} x {:<3} {:>16.3} {:>16.3} {:>13.1}%",
            c.nodes,
            c.app.name(),
            c.size,
            c.size,
            c.hand_secs * 1e3,
            c.sage_secs * 1e3,
            c.pct_of_hand()
        );
    }
    for app in [BenchApp::Fft2d, BenchApp::CornerTurn] {
        let xs: Vec<f64> = cells
            .iter()
            .filter(|c| c.app == app)
            .map(|c| c.pct_of_hand())
            .collect();
        if !xs.is_empty() {
            let _ = writeln!(
                s,
                "average {:<12} {:>58.1}%",
                app.name(),
                xs.iter().sum::<f64>() / xs.len() as f64
            );
        }
    }
    let all: Vec<f64> = cells.iter().map(|c| c.pct_of_hand()).collect();
    if !all.is_empty() {
        let _ = writeln!(
            s,
            "cumulative average {:>51.1}%",
            all.iter().sum::<f64>() / all.len() as f64
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_math() {
        let c = Table1Cell {
            app: BenchApp::Fft2d,
            size: 256,
            nodes: 4,
            hand_secs: 0.08,
            sage_secs: 0.10,
        };
        assert!((c.pct_of_hand() - 80.0).abs() < 1e-9);
        assert!((c.overhead() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn small_cell_runs_and_is_within_paper_band() {
        let c = table1_cell(
            BenchApp::CornerTurn,
            64,
            4,
            &RuntimeOptions::paper_faithful(),
        );
        assert!(c.hand_secs > 0.0 && c.sage_secs > 0.0);
        let pct = c.pct_of_hand();
        assert!(pct < 100.0, "SAGE must carry overhead, pct={pct}");
        assert!(pct > 40.0, "SAGE must stay comparable, pct={pct}");
    }

    #[test]
    fn render_contains_averages() {
        let cells = vec![
            Table1Cell {
                app: BenchApp::Fft2d,
                size: 256,
                nodes: 4,
                hand_secs: 0.01,
                sage_secs: 0.0125,
            },
            Table1Cell {
                app: BenchApp::CornerTurn,
                size: 256,
                nodes: 4,
                hand_secs: 0.004,
                sage_secs: 0.005,
            },
        ];
        let t = render_table1(&cells);
        assert!(t.contains("2D FFT"));
        assert!(t.contains("Corner Turn"));
        assert!(t.contains("cumulative average"));
        assert!(t.contains("80.0%"));
    }
}
