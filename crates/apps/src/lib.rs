//! # sage-apps
//!
//! The paper's benchmark applications — "algorithms that have been used by
//! Rome Laboratories and MITRE in their benchmarking efforts of COTS based
//! high performance computing systems" (§3.1) — each in two forms:
//!
//! * a **SAGE-modeled** form: a Designer dataflow model whose glue code is
//!   auto-generated and executed by the run-time kernel, and
//! * a **hand-coded** form: a direct MPI implementation against the
//!   vendor-tuned message layer, the way CSPI's engineers wrote the
//!   reference versions.
//!
//! Applications:
//!
//! * [`fft2d`] — the Parallel 2D FFT (row FFTs → distributed corner turn →
//!   column FFTs; the distributed result is the transposed 2D FFT, as usual
//!   for this decomposition);
//! * [`corner_turn`] — the Distributed Corner Turn (all-to-all
//!   redistribution + local tile transposes);
//! * [`stap`] — a STAP-flavoured radar pipeline (pulse compression →
//!   Doppler FFT → corner turn → beamform → detect) exercising the full
//!   Designer/AToT/codegen flow on a deeper graph;
//! * [`beamformer`] — a frequency-domain beamformer for a uniform linear
//!   array (shading → corner turn + spatial FFT → beam power);
//! * [`range_doppler`] — a SAR-style range-doppler imaging chain (range
//!   FFT → reference multiply → corner turn + doppler FFT → power map).
//!
//! [`workload`] provides deterministic input generation and serial reference
//! implementations; [`kernels`] registers the ISSPL-like shelf kernels with
//! the run-time; [`experiment`] drives the paper's Table 1.0 measurement
//! procedure.

#![warn(missing_docs)]

pub mod beamformer;
pub mod corner_turn;
pub mod dist;
pub mod experiment;
pub mod fft2d;
pub mod image_filter;
pub mod kernels;
pub mod range_doppler;
pub mod stap;
pub mod workload;

pub use experiment::{table1_cell, Table1Cell};
