//! CSV export of traces for offline analysis.

use crate::trace::Trace;
use std::fmt::Write;

/// Renders the trace as CSV with header
/// `time,node,kind,id,iteration`.
pub fn to_csv(trace: &Trace) -> String {
    let mut s = String::from("time,node,kind,id,iteration\n");
    for e in trace.events() {
        let _ = writeln!(
            s,
            "{:.9},{},{:?},{},{}",
            e.time, e.node, e.kind, e.id, e.iteration
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, ProbeEvent};

    #[test]
    fn csv_has_header_and_rows() {
        let t = Trace::new(vec![
            ProbeEvent::new(0.5, 1, EventKind::FnStart, 3, 2),
            ProbeEvent::new(1.5, 1, EventKind::FnEnd, 3, 2),
        ]);
        let csv = to_csv(&t);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "time,node,kind,id,iteration");
        assert_eq!(lines.len(), 3);
        assert!(lines[1].starts_with("0.5") && lines[1].contains("FnStart"));
        assert!(lines[2].contains("FnEnd"));
    }

    #[test]
    fn empty_trace_only_header() {
        assert_eq!(to_csv(&Trace::default()).lines().count(), 1);
    }
}
