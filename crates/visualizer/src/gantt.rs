//! ASCII Gantt display — the textual stand-in for the Visualizer's
//! "variety of graphical displays".

use crate::trace::Trace;
use std::fmt::Write;

/// Renders per-node execution timelines as ASCII art, `width` columns wide.
///
/// Each row is one node; `#` marks time buckets where the node was executing
/// a function, `.` idle buckets. A scale line is appended.
pub fn render(trace: &Trace, width: usize) -> String {
    let width = width.max(10);
    let Some((t0, t1)) = trace.span() else {
        return String::from("(empty trace)\n");
    };
    let span = (t1 - t0).max(f64::EPSILON);
    let mut out = String::new();
    for node in trace.nodes() {
        let mut row = vec!['.'; width];
        // Union of all function intervals on the node.
        let mut fn_ids: Vec<u32> = trace
            .events()
            .iter()
            .filter(|e| e.node == node)
            .map(|e| e.id)
            .collect();
        fn_ids.sort_unstable();
        fn_ids.dedup();
        for f in fn_ids {
            for (s, e) in trace.fn_intervals(node, f) {
                let lo = (((s - t0) / span) * width as f64).floor() as usize;
                let hi = (((e - t0) / span) * width as f64).ceil() as usize;
                for cell in row.iter_mut().take(hi.min(width)).skip(lo.min(width)) {
                    *cell = '#';
                }
            }
        }
        let _ = writeln!(out, "node {node:>3} |{}|", row.iter().collect::<String>());
    }
    let _ = writeln!(
        out,
        "         {:<w$}{:.4}s",
        format!("{t0:.4}s"),
        t1,
        w = width - 5
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, ProbeEvent};

    #[test]
    fn renders_busy_and_idle() {
        let t = Trace::new(vec![
            ProbeEvent::new(0.0, 0, EventKind::FnStart, 1, 0),
            ProbeEvent::new(5.0, 0, EventKind::FnEnd, 1, 0),
            ProbeEvent::new(5.0, 1, EventKind::FnStart, 2, 0),
            ProbeEvent::new(10.0, 1, EventKind::FnEnd, 2, 0),
        ]);
        let s = render(&t, 20);
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[0].starts_with("node   0"));
        // Node 0 busy in the first half, node 1 in the second.
        assert!(lines[0].contains("#"));
        let row0: String = lines[0]
            .chars()
            .filter(|c| *c == '#' || *c == '.')
            .collect();
        assert!(row0.starts_with('#'));
        let row1: String = lines[1]
            .chars()
            .filter(|c| *c == '#' || *c == '.')
            .collect();
        assert!(row1.starts_with('.'));
        assert!(row1.ends_with('#'));
    }

    #[test]
    fn empty_trace_message() {
        assert_eq!(render(&Trace::default(), 40), "(empty trace)\n");
    }
}
