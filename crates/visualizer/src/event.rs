//! Probe events: the raw samples instrumentation produces.

/// What a probe observed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A function invocation began (`id` = function-table index).
    FnStart,
    /// A function invocation completed.
    FnEnd,
    /// A message transfer was initiated (`id` = logical buffer id).
    XferStart,
    /// A message transfer was fully received.
    XferEnd,
    /// An input data set left the data source (`id` = iteration).
    SourceEmit,
    /// A final result reached the data sink (`id` = iteration).
    SinkAbsorb,
    /// A physical buffer was allocated (`id` = logical buffer id).
    BufAlloc,
    /// A dropped transfer was retried (`id` = logical buffer id).
    XferRetry,
    /// An injected fault was observed (`id` = function-table index or
    /// buffer id, depending on the fault site).
    Fault,
    /// A wire connection to a peer rank was established (`id` = peer rank).
    NetConnect,
    /// A framed message was put on a real wire (`id` = peer rank).
    NetSend,
    /// A framed message arrived off a real wire (`id` = peer rank).
    NetRecv,
    /// A wire operation was retried (`id` = peer rank).
    NetRetry,
    /// A wire operation timed out (`id` = peer rank).
    NetTimeout,
}

/// One timestamped observation from a probe.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ProbeEvent {
    /// Time in seconds (virtual or wall, per the run's clock policy).
    pub time: f64,
    /// Node that recorded the event.
    pub node: u32,
    /// Event kind.
    pub kind: EventKind,
    /// Kind-specific id (function index, buffer id, or iteration).
    pub id: u32,
    /// Iteration number the event belongs to.
    pub iteration: u32,
}

impl ProbeEvent {
    /// Creates an event.
    pub fn new(time: f64, node: u32, kind: EventKind, id: u32, iteration: u32) -> ProbeEvent {
        ProbeEvent {
            time,
            node,
            kind,
            id,
            iteration,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction() {
        let e = ProbeEvent::new(1.5, 2, EventKind::FnStart, 7, 3);
        assert_eq!(e.time, 1.5);
        assert_eq!(e.node, 2);
        assert_eq!(e.kind, EventKind::FnStart);
        assert_eq!(e.id, 7);
        assert_eq!(e.iteration, 3);
    }
}
