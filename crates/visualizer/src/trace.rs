//! Merged, time-ordered event traces.

use crate::event::{EventKind, ProbeEvent};

/// A complete, time-sorted trace of one run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Trace {
    events: Vec<ProbeEvent>,
}

impl Trace {
    /// Wraps a pre-sorted event list.
    pub fn new(events: Vec<ProbeEvent>) -> Trace {
        debug_assert!(events.windows(2).all(|w| w[0].time <= w[1].time));
        Trace { events }
    }

    /// All events in time order.
    pub fn events(&self) -> &[ProbeEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` if the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events of one kind, in time order.
    pub fn of_kind(&self, kind: EventKind) -> impl Iterator<Item = &ProbeEvent> {
        self.events.iter().filter(move |e| e.kind == kind)
    }

    /// The distinct node ids that appear, sorted.
    pub fn nodes(&self) -> Vec<u32> {
        let mut v: Vec<u32> = self.events.iter().map(|e| e.node).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// The time span `(first, last)` of the trace, or `None` if empty.
    pub fn span(&self) -> Option<(f64, f64)> {
        Some((self.events.first()?.time, self.events.last()?.time))
    }

    /// Matched `(start, end)` intervals for one function id on one node.
    pub fn fn_intervals(&self, node: u32, fn_id: u32) -> Vec<(f64, f64)> {
        let mut out = Vec::new();
        let mut open: Option<f64> = None;
        for e in &self.events {
            if e.node != node || e.id != fn_id {
                continue;
            }
            match e.kind {
                EventKind::FnStart => open = Some(e.time),
                EventKind::FnEnd => {
                    if let Some(s) = open.take() {
                        out.push((s, e.time));
                    }
                }
                _ => {}
            }
        }
        out
    }

    /// Total busy (function-executing) time per node id.
    pub fn busy_time(&self, node: u32) -> f64 {
        let mut total = 0.0;
        let mut opens: std::collections::HashMap<u32, f64> = std::collections::HashMap::new();
        for e in &self.events {
            if e.node != node {
                continue;
            }
            match e.kind {
                EventKind::FnStart => {
                    opens.insert(e.id, e.time);
                }
                EventKind::FnEnd => {
                    if let Some(s) = opens.remove(&e.id) {
                        total += e.time - s;
                    }
                }
                _ => {}
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> Trace {
        Trace::new(vec![
            ProbeEvent::new(0.0, 0, EventKind::SourceEmit, 0, 0),
            ProbeEvent::new(1.0, 0, EventKind::FnStart, 5, 0),
            ProbeEvent::new(3.0, 0, EventKind::FnEnd, 5, 0),
            ProbeEvent::new(4.0, 1, EventKind::FnStart, 6, 0),
            ProbeEvent::new(9.0, 1, EventKind::FnEnd, 6, 0),
            ProbeEvent::new(10.0, 1, EventKind::SinkAbsorb, 0, 0),
        ])
    }

    #[test]
    fn spans_and_nodes() {
        let t = demo();
        assert_eq!(t.span(), Some((0.0, 10.0)));
        assert_eq!(t.nodes(), vec![0, 1]);
        assert_eq!(t.len(), 6);
        assert!(Trace::default().span().is_none());
    }

    #[test]
    fn intervals_matched() {
        let t = demo();
        assert_eq!(t.fn_intervals(0, 5), vec![(1.0, 3.0)]);
        assert_eq!(t.fn_intervals(1, 6), vec![(4.0, 9.0)]);
        assert!(t.fn_intervals(0, 6).is_empty());
    }

    #[test]
    fn busy_time_sums_intervals() {
        let t = demo();
        assert_eq!(t.busy_time(0), 2.0);
        assert_eq!(t.busy_time(1), 5.0);
        assert_eq!(t.busy_time(9), 0.0);
    }

    #[test]
    fn kind_filter() {
        let t = demo();
        assert_eq!(t.of_kind(EventKind::FnStart).count(), 2);
        assert_eq!(t.of_kind(EventKind::SinkAbsorb).count(), 1);
    }
}
