//! Trace collection: thread-safe accumulation of probe events.
//!
//! Node threads append into per-node buffers behind a light mutex (the
//! probes are off the critical path unless enabled); the host merges them
//! into a time-ordered [`crate::trace::Trace`] after the run.

use crate::event::ProbeEvent;
use crate::trace::Trace;
use std::sync::Mutex;

/// A shared, thread-safe event collector for one run.
pub struct Collector {
    enabled: bool,
    lanes: Vec<Mutex<Vec<ProbeEvent>>>,
}

impl Collector {
    /// Creates a collector for `nodes` nodes.
    pub fn new(nodes: usize, enabled: bool) -> Collector {
        Collector {
            enabled,
            lanes: (0..nodes).map(|_| Mutex::new(Vec::new())).collect(),
        }
    }

    /// Whether probes should record at all (a disabled collector makes
    /// recording a cheap no-op, matching the Visualizer's configurable
    /// instrumentation).
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Number of lanes (nodes).
    pub fn nodes(&self) -> usize {
        self.lanes.len()
    }

    /// Records an event into the emitting node's lane.
    pub fn record(&self, e: ProbeEvent) {
        if !self.enabled {
            return;
        }
        self.lanes[e.node as usize]
            .lock()
            .expect("collector lane poisoned")
            .push(e);
    }

    /// Merges all lanes into a single trace sorted by time (stable, so
    /// same-time events keep per-node order).
    pub fn into_trace(self) -> Trace {
        let mut events = Vec::new();
        for lane in self.lanes {
            events.extend(lane.into_inner().expect("collector lane poisoned"));
        }
        events.sort_by(|a, b| a.time.total_cmp(&b.time));
        Trace::new(events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    #[test]
    fn records_and_merges_sorted() {
        let c = Collector::new(2, true);
        c.record(ProbeEvent::new(2.0, 0, EventKind::FnStart, 1, 0));
        c.record(ProbeEvent::new(1.0, 1, EventKind::FnStart, 2, 0));
        c.record(ProbeEvent::new(3.0, 1, EventKind::FnEnd, 2, 0));
        let t = c.into_trace();
        assert_eq!(t.len(), 3);
        let times: Vec<f64> = t.events().iter().map(|e| e.time).collect();
        assert_eq!(times, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn disabled_collector_drops_events() {
        let c = Collector::new(1, false);
        c.record(ProbeEvent::new(1.0, 0, EventKind::FnStart, 0, 0));
        assert!(!c.enabled());
        assert_eq!(c.into_trace().len(), 0);
    }

    #[test]
    fn concurrent_recording() {
        let c = std::sync::Arc::new(Collector::new(4, true));
        std::thread::scope(|s| {
            for node in 0..4u32 {
                let c = c.clone();
                s.spawn(move || {
                    for i in 0..100 {
                        c.record(ProbeEvent::new(i as f64, node, EventKind::FnStart, i, 0));
                    }
                });
            }
        });
        let c = std::sync::Arc::into_inner(c).unwrap();
        assert_eq!(c.into_trace().len(), 400);
    }
}
