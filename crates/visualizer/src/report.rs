//! Textual performance reports — the tabular "displays" of the Visualizer.

use crate::analysis::Analysis;
use crate::event::EventKind;
use crate::trace::Trace;
use std::fmt::Write;

/// Per-function execution statistics.
#[derive(Clone, Debug, PartialEq)]
pub struct FnStats {
    /// Function-table index.
    pub fn_id: u32,
    /// Completed invocations across all nodes.
    pub invocations: usize,
    /// Total busy seconds across all nodes.
    pub total_secs: f64,
    /// Mean seconds per invocation.
    pub mean_secs: f64,
    /// Maximum seconds over invocations.
    pub max_secs: f64,
}

/// Computes per-function statistics from a trace.
pub fn function_stats(trace: &Trace) -> Vec<FnStats> {
    let mut fn_ids: Vec<u32> = trace.of_kind(EventKind::FnStart).map(|e| e.id).collect();
    fn_ids.sort_unstable();
    fn_ids.dedup();
    let mut out = Vec::with_capacity(fn_ids.len());
    for f in fn_ids {
        let mut durations = Vec::new();
        for node in trace.nodes() {
            for (s, e) in trace.fn_intervals(node, f) {
                durations.push(e - s);
            }
        }
        if durations.is_empty() {
            continue;
        }
        let total: f64 = durations.iter().sum();
        out.push(FnStats {
            fn_id: f,
            invocations: durations.len(),
            total_secs: total,
            mean_secs: total / durations.len() as f64,
            max_secs: durations.iter().cloned().fold(0.0, f64::max),
        });
    }
    out.sort_by(|a, b| b.total_secs.total_cmp(&a.total_secs));
    out
}

/// Renders a full performance report: period/latency summary, per-node
/// utilization, and the per-function table, busiest first.
pub fn render(trace: &Trace) -> String {
    let analysis = Analysis::of(trace);
    let mut s = String::new();
    let _ = writeln!(s, "=== SAGE Visualizer report ===");
    let _ = writeln!(
        s,
        "iterations traced: {} | mean latency: {:.6} s | mean period: {:.6} s",
        analysis.latencies.len(),
        analysis.mean_latency(),
        analysis.mean_period()
    );
    let _ = writeln!(
        s,
        "worst latency: {:.6} s | latency jitter (stddev): {:.6} s",
        analysis.max_latency(),
        analysis.latency_jitter()
    );
    let _ = writeln!(s, "\nnode utilization:");
    for (node, u) in &analysis.utilization {
        let bars = (u * 40.0).round() as usize;
        let _ = writeln!(
            s,
            "  node {node:>3} [{:<40}] {:5.1}%",
            "#".repeat(bars.min(40)),
            u * 100.0
        );
    }
    let _ = writeln!(
        s,
        "\n{:<8} {:>12} {:>14} {:>14} {:>14}",
        "function", "invocations", "total (ms)", "mean (ms)", "max (ms)"
    );
    for f in function_stats(trace) {
        let _ = writeln!(
            s,
            "F{:<7} {:>12} {:>14.4} {:>14.4} {:>14.4}",
            f.fn_id,
            f.invocations,
            f.total_secs * 1e3,
            f.mean_secs * 1e3,
            f.max_secs * 1e3
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::ProbeEvent;

    fn trace() -> Trace {
        Trace::new(vec![
            ProbeEvent::new(0.0, 0, EventKind::SourceEmit, 0, 0),
            ProbeEvent::new(0.0, 0, EventKind::FnStart, 1, 0),
            ProbeEvent::new(2.0, 0, EventKind::FnEnd, 1, 0),
            ProbeEvent::new(2.0, 1, EventKind::FnStart, 1, 0),
            ProbeEvent::new(3.0, 1, EventKind::FnEnd, 1, 0),
            ProbeEvent::new(3.0, 1, EventKind::FnStart, 2, 0),
            ProbeEvent::new(7.0, 1, EventKind::FnEnd, 2, 0),
            ProbeEvent::new(7.0, 1, EventKind::SinkAbsorb, 0, 0),
        ])
    }

    #[test]
    fn stats_aggregate_across_nodes() {
        let stats = function_stats(&trace());
        assert_eq!(stats.len(), 2);
        // F2 (4 s) ranks above F1 (2 + 1 s).
        assert_eq!(stats[0].fn_id, 2);
        assert_eq!(stats[0].invocations, 1);
        assert_eq!(stats[1].fn_id, 1);
        assert_eq!(stats[1].invocations, 2);
        assert!((stats[1].total_secs - 3.0).abs() < 1e-12);
        assert!((stats[1].mean_secs - 1.5).abs() < 1e-12);
        assert!((stats[1].max_secs - 2.0).abs() < 1e-12);
    }

    #[test]
    fn report_renders_all_sections() {
        let r = render(&trace());
        assert!(r.contains("Visualizer report"));
        assert!(r.contains("node utilization"));
        assert!(r.contains("node   0"));
        assert!(r.contains("F2"));
        assert!(r.contains("mean latency: 7.000000 s"));
        assert!(r.contains("worst latency: 7.000000 s"));
    }

    #[test]
    fn empty_trace_report_is_safe() {
        let r = render(&Trace::default());
        assert!(r.contains("iterations traced: 0"));
    }
}
