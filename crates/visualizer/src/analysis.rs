//! Trace analyses: the paper's period/latency metrics, utilization,
//! bottleneck ranking, and latency-threshold violations.

use crate::event::EventKind;
use crate::trace::Trace;

/// A ranked bottleneck candidate: the function whose cumulative execution
/// time dominates a node.
#[derive(Clone, Debug, PartialEq)]
pub struct Bottleneck {
    /// Node id.
    pub node: u32,
    /// Function-table index.
    pub fn_id: u32,
    /// Total seconds spent in this function on this node.
    pub busy_secs: f64,
    /// Fraction of the trace span this represents.
    pub share: f64,
}

/// One iteration whose latency exceeded the configured threshold.
#[derive(Clone, Debug, PartialEq)]
pub struct LatencyViolation {
    /// Iteration number.
    pub iteration: u32,
    /// Measured latency, seconds.
    pub latency: f64,
    /// The threshold that was violated.
    pub threshold: f64,
}

/// Computed performance summary of a trace.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Analysis {
    /// Per-iteration latency: source emit → sink absorb (paper §3.3).
    pub latencies: Vec<f64>,
    /// Periods between consecutive source emissions (paper §3.3).
    pub periods: Vec<f64>,
    /// Per-node busy fraction over the trace span, as `(node, utilization)`.
    pub utilization: Vec<(u32, f64)>,
    /// Function/node pairs ranked by cumulative busy time, descending.
    pub bottlenecks: Vec<Bottleneck>,
}

impl Analysis {
    /// Analyzes a trace.
    pub fn of(trace: &Trace) -> Analysis {
        let mut a = Analysis::default();
        // Latency per iteration: first SourceEmit to last SinkAbsorb.
        let mut emits: Vec<(u32, f64)> = trace
            .of_kind(EventKind::SourceEmit)
            .map(|e| (e.iteration, e.time))
            .collect();
        emits.sort_by_key(|(it, _)| *it);
        emits.dedup_by_key(|(it, _)| *it); // first emit per iteration
        for (it, start) in &emits {
            let end = trace
                .of_kind(EventKind::SinkAbsorb)
                .filter(|e| e.iteration == *it)
                .map(|e| e.time)
                .fold(f64::NEG_INFINITY, f64::max);
            if end.is_finite() {
                a.latencies.push(end - start);
            }
        }
        // Period: gaps between consecutive iterations' first emissions.
        for w in emits.windows(2) {
            a.periods.push(w[1].1 - w[0].1);
        }
        // Utilization + bottlenecks.
        let span = trace.span().map(|(s, e)| e - s).unwrap_or(0.0);
        for node in trace.nodes() {
            let busy = trace.busy_time(node);
            a.utilization
                .push((node, if span > 0.0 { busy / span } else { 0.0 }));
            // Busy time per function on this node.
            let mut fn_ids: Vec<u32> = trace
                .events()
                .iter()
                .filter(|e| e.node == node && e.kind == EventKind::FnStart)
                .map(|e| e.id)
                .collect();
            fn_ids.sort_unstable();
            fn_ids.dedup();
            for f in fn_ids {
                let busy_secs: f64 = trace.fn_intervals(node, f).iter().map(|(s, e)| e - s).sum();
                a.bottlenecks.push(Bottleneck {
                    node,
                    fn_id: f,
                    busy_secs,
                    share: if span > 0.0 { busy_secs / span } else { 0.0 },
                });
            }
        }
        a.bottlenecks
            .sort_by(|x, y| y.busy_secs.total_cmp(&x.busy_secs));
        a
    }

    /// Mean latency, or 0 for an empty trace.
    pub fn mean_latency(&self) -> f64 {
        mean(&self.latencies)
    }

    /// Mean period, or 0 when fewer than two iterations were traced.
    pub fn mean_period(&self) -> f64 {
        mean(&self.periods)
    }

    /// Worst-case (maximum) latency over the traced iterations.
    pub fn max_latency(&self) -> f64 {
        self.latencies.iter().cloned().fold(0.0, f64::max)
    }

    /// Latency jitter: the standard deviation over iterations — the number
    /// a real-time engineer checks against the deadline margin.
    pub fn latency_jitter(&self) -> f64 {
        if self.latencies.len() < 2 {
            return 0.0;
        }
        let m = self.mean_latency();
        let var = self
            .latencies
            .iter()
            .map(|l| (l - m) * (l - m))
            .sum::<f64>()
            / (self.latencies.len() - 1) as f64;
        var.sqrt()
    }

    /// Iterations whose latency exceeds `threshold` — the Visualizer's
    /// "violated latency thresholds" search.
    pub fn latency_violations(&self, threshold: f64) -> Vec<LatencyViolation> {
        self.latencies
            .iter()
            .enumerate()
            .filter(|(_, &l)| l > threshold)
            .map(|(i, &l)| LatencyViolation {
                iteration: i as u32,
                latency: l,
                threshold,
            })
            .collect()
    }

    /// The single worst bottleneck, if any function executed.
    pub fn top_bottleneck(&self) -> Option<&Bottleneck> {
        self.bottlenecks.first()
    }
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::ProbeEvent;

    fn two_iteration_trace() -> Trace {
        Trace::new(vec![
            ProbeEvent::new(0.0, 0, EventKind::SourceEmit, 0, 0),
            ProbeEvent::new(0.5, 0, EventKind::FnStart, 1, 0),
            ProbeEvent::new(2.5, 0, EventKind::FnEnd, 1, 0),
            ProbeEvent::new(3.0, 1, EventKind::SinkAbsorb, 0, 0),
            ProbeEvent::new(4.0, 0, EventKind::SourceEmit, 1, 1),
            ProbeEvent::new(4.5, 0, EventKind::FnStart, 1, 1),
            ProbeEvent::new(5.0, 0, EventKind::FnEnd, 1, 1),
            ProbeEvent::new(9.0, 1, EventKind::SinkAbsorb, 1, 1),
        ])
    }

    #[test]
    fn latency_and_period_follow_paper_definitions() {
        let a = Analysis::of(&two_iteration_trace());
        assert_eq!(a.latencies, vec![3.0, 5.0]);
        assert_eq!(a.periods, vec![4.0]);
        assert_eq!(a.mean_latency(), 4.0);
        assert_eq!(a.mean_period(), 4.0);
    }

    #[test]
    fn violations_flag_only_over_threshold() {
        let a = Analysis::of(&two_iteration_trace());
        let v = a.latency_violations(4.0);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].iteration, 1);
        assert_eq!(v[0].latency, 5.0);
        assert!(a.latency_violations(10.0).is_empty());
    }

    #[test]
    fn utilization_and_bottlenecks() {
        let a = Analysis::of(&two_iteration_trace());
        // Node 0 busy 2.0 + 0.5 = 2.5 over span 9.0.
        let u0 = a.utilization.iter().find(|(n, _)| *n == 0).unwrap().1;
        assert!((u0 - 2.5 / 9.0).abs() < 1e-12);
        let top = a.top_bottleneck().unwrap();
        assert_eq!((top.node, top.fn_id), (0, 1));
        assert!((top.busy_secs - 2.5).abs() < 1e-12);
    }

    #[test]
    fn jitter_and_max() {
        let a = Analysis::of(&two_iteration_trace());
        assert_eq!(a.max_latency(), 5.0);
        // Sample stddev of [3, 5] = sqrt(2).
        assert!((a.latency_jitter() - 2.0f64.sqrt()).abs() < 1e-12);
        let single = Analysis {
            latencies: vec![1.0],
            ..Analysis::default()
        };
        assert_eq!(single.latency_jitter(), 0.0);
    }

    #[test]
    fn empty_trace_is_safe() {
        let a = Analysis::of(&Trace::default());
        assert_eq!(a.mean_latency(), 0.0);
        assert!(a.top_bottleneck().is_none());
    }
}
