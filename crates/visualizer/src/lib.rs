//! # sage-visualizer
//!
//! The **SAGE Visualizer**: "a configurable instrumentation package that
//! enables the designer to visualize the execution of the application
//! through a variety of graphical displays that are fed by probes placed
//! within the generated code. The Visualizer allows the designer to
//! configure the instrumentation probes to measure application performance,
//! and search for problems in the system, such as bottlenecks or violated
//! latency thresholds" (paper §1.1).
//!
//! The glue-code generator plants [`probe::Probe`] handles in the run-time's
//! execution paths; each node thread records [`event::ProbeEvent`]s into a
//! per-thread buffer ([`collector::Collector`]), merged after the run into a
//! [`trace::Trace`]. Analyses ([`analysis`]) compute the paper's §3.3
//! metrics — **period** ("the time between input data sets") and **latency**
//! ("the time from when the first data leaves the data source to the time
//! the final result is output to the data sink") — plus utilization,
//! bottleneck ranking, and latency-threshold violations. Displays are
//! textual: an ASCII Gantt chart ([`gantt`]) and CSV export ([`export`]).

#![warn(missing_docs)]

pub mod analysis;
pub mod collector;
pub mod event;
pub mod export;
pub mod gantt;
pub mod probe;
pub mod report;
pub mod trace;

pub use analysis::{Analysis, Bottleneck, LatencyViolation};
pub use collector::Collector;
pub use event::{EventKind, ProbeEvent};
pub use probe::Probe;
pub use trace::Trace;
