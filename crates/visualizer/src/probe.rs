//! Probe handles planted in generated code.
//!
//! A [`Probe`] is a cheap cloneable handle bound to one node; the run-time
//! calls its record methods at function boundaries, transfer points, and
//! source/sink crossings — exactly the places the paper says probes are
//! "placed within the generated code".

use crate::collector::Collector;
use crate::event::{EventKind, ProbeEvent};
use std::sync::Arc;

/// A per-node instrumentation handle.
#[derive(Clone)]
pub struct Probe {
    collector: Arc<Collector>,
    node: u32,
}

impl Probe {
    /// Binds a probe to `node` on a shared collector.
    pub fn new(collector: Arc<Collector>, node: u32) -> Probe {
        Probe { collector, node }
    }

    /// A probe that records nothing (for uninstrumented runs).
    pub fn disabled() -> Probe {
        Probe {
            collector: Arc::new(Collector::new(1, false)),
            node: 0,
        }
    }

    /// Whether this probe records.
    pub fn enabled(&self) -> bool {
        self.collector.enabled()
    }

    /// Records a raw event.
    pub fn record(&self, time: f64, kind: EventKind, id: u32, iteration: u32) {
        if self.collector.enabled() {
            self.collector
                .record(ProbeEvent::new(time, self.node, kind, id, iteration));
        }
    }

    /// Function invocation began.
    pub fn fn_start(&self, time: f64, fn_id: u32, iteration: u32) {
        self.record(time, EventKind::FnStart, fn_id, iteration);
    }

    /// Function invocation completed.
    pub fn fn_end(&self, time: f64, fn_id: u32, iteration: u32) {
        self.record(time, EventKind::FnEnd, fn_id, iteration);
    }

    /// Transfer initiated.
    pub fn xfer_start(&self, time: f64, buf_id: u32, iteration: u32) {
        self.record(time, EventKind::XferStart, buf_id, iteration);
    }

    /// Transfer completed.
    pub fn xfer_end(&self, time: f64, buf_id: u32, iteration: u32) {
        self.record(time, EventKind::XferEnd, buf_id, iteration);
    }

    /// A dropped transfer was retried.
    pub fn xfer_retry(&self, time: f64, buf_id: u32, iteration: u32) {
        self.record(time, EventKind::XferRetry, buf_id, iteration);
    }

    /// An injected fault was observed.
    pub fn fault(&self, time: f64, id: u32, iteration: u32) {
        self.record(time, EventKind::Fault, id, iteration);
    }

    /// Wire connection to `peer` established (real transports only).
    pub fn net_connect(&self, time: f64, peer: u32) {
        self.record(time, EventKind::NetConnect, peer, 0);
    }

    /// Framed message sent to `peer` over a real wire.
    pub fn net_send(&self, time: f64, peer: u32, iteration: u32) {
        self.record(time, EventKind::NetSend, peer, iteration);
    }

    /// Framed message received from `peer` off a real wire.
    pub fn net_recv(&self, time: f64, peer: u32, iteration: u32) {
        self.record(time, EventKind::NetRecv, peer, iteration);
    }

    /// Wire operation toward `peer` retried.
    pub fn net_retry(&self, time: f64, peer: u32) {
        self.record(time, EventKind::NetRetry, peer, 0);
    }

    /// Wire operation toward `peer` timed out.
    pub fn net_timeout(&self, time: f64, peer: u32) {
        self.record(time, EventKind::NetTimeout, peer, 0);
    }

    /// Data set left the source.
    pub fn source_emit(&self, time: f64, iteration: u32) {
        self.record(time, EventKind::SourceEmit, iteration, iteration);
    }

    /// Result reached the sink.
    pub fn sink_absorb(&self, time: f64, iteration: u32) {
        self.record(time, EventKind::SinkAbsorb, iteration, iteration);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_records_through_collector() {
        let c = Arc::new(Collector::new(2, true));
        let p0 = Probe::new(c.clone(), 0);
        let p1 = Probe::new(c.clone(), 1);
        p0.fn_start(0.0, 3, 0);
        p0.fn_end(1.0, 3, 0);
        p1.source_emit(0.5, 0);
        drop((p0, p1));
        let t = Arc::into_inner(c).unwrap().into_trace();
        assert_eq!(t.len(), 3);
        assert_eq!(t.events()[1].node, 1);
        assert_eq!(t.events()[1].kind, EventKind::SourceEmit);
    }

    #[test]
    fn disabled_probe_is_silent() {
        let p = Probe::disabled();
        assert!(!p.enabled());
        p.fn_start(0.0, 0, 0); // must not panic or record
    }
}
