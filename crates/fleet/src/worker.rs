//! The fleet worker daemon: a long-lived process hosting one mesh
//! endpoint, executing many concurrent jobs over warm connections.
//!
//! Lifecycle, from the worker's side:
//!
//! 1. bind the control listen address, print
//!    `sage-fleet listening on <addr>` so the scheduler (or an operator)
//!    can collect the bound port;
//! 2. accept the scheduler's control connection, exchange
//!    `Hello`/`HelloAck` (an explicit version check — a mismatched
//!    scheduler gets a typed `Reject`, never a codec parse failure),
//!    announce the data-plane listen address;
//! 3. on `Init`, build the warm mesh with the other fleet workers
//!    ([`MeshCore`]) and ack with `InitDone`;
//! 4. serve jobs: each `Job` message runs on its own thread over a
//!    [`JobTransport`] view of the shared mesh (per-job rank namespace),
//!    reporting back with `JobResult` — run failures travel in-band;
//! 5. on `Drain` (or scheduler EOF): finish in-flight jobs, ack with
//!    `DrainDone`, tear the mesh down, and return `Ok` — exit code 0.
//!
//! Thread count is O(1) in peers and jobs-in-flight bounded only by the
//! scheduler's slot accounting: one mesh I/O thread, one control reader
//! (the main thread), plus one short-lived thread per *executing* job.

use crate::proto::{is_eof, read_fleet, send_fleet, send_reject, FleetJob, FleetMsg};
use sage_net::{
    failed_report, prepare_job, JobTransport, MeshCore, NetConfig, NetError, RankReport,
    RejectReason, PROTO_VERSION,
};
use sage_runtime::{execute_rank, Registry, RuntimeOptions};
use sage_visualizer::Probe;
use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// Runs one fleet worker daemon: binds `listen`, serves jobs until
/// drained (or the scheduler disconnects), and returns.
///
/// `register` installs the kernel library into each job's registry; it
/// must be `Sync` because concurrent jobs prepare concurrently.
pub fn serve_fleet(
    listen: &str,
    register: &(dyn Fn(&mut Registry) + Sync),
) -> Result<(), NetError> {
    let control_listener = TcpListener::bind(listen)
        .map_err(|e| NetError::Io(format!("cannot bind {listen}: {e}")))?;
    let addr = control_listener.local_addr()?;
    println!("sage-fleet listening on {addr}");
    std::io::stdout().flush()?;

    let (control, _) = control_listener.accept()?;
    control.set_nodelay(true)?;

    // Version exchange before anything layout-dependent.
    let hello = read_fleet(&mut &control)?;
    let FleetMsg::Hello { proto_version } = hello else {
        return Err(NetError::Protocol(format!("expected hello, got {hello:?}")));
    };
    if proto_version != PROTO_VERSION {
        let _ = send_reject(
            &mut &control,
            RejectReason::VersionMismatch {
                ours: PROTO_VERSION,
                theirs: proto_version,
            },
        );
        return Err(NetError::VersionMismatch {
            ours: PROTO_VERSION,
            theirs: proto_version,
        });
    }
    // The mesh listens on its own ephemeral port, same interface.
    let data_listener = TcpListener::bind((addr.ip(), 0))?;
    let data_addr = data_listener.local_addr()?.to_string();
    send_fleet(
        &mut &control,
        &FleetMsg::HelloAck {
            proto_version: PROTO_VERSION,
            data_addr,
        },
    )?;

    let init = read_fleet(&mut &control)?;
    let FleetMsg::Init {
        worker_index,
        peers,
        heartbeat_ms,
    } = init
    else {
        return Err(NetError::Protocol(format!("expected init, got {init:?}")));
    };
    let core = MeshCore::connect(
        worker_index as usize,
        &peers,
        &data_listener,
        NetConfig::default().with_heartbeat_ms(heartbeat_ms),
        Probe::disabled(),
    )?;
    send_fleet(&mut &control, &FleetMsg::InitDone { worker_index })?;

    let writer = Mutex::new(control.try_clone()?);
    let active = ActiveJobs::default();
    let completed = AtomicU64::new(0);

    let served = std::thread::scope(|s| -> Result<(), NetError> {
        loop {
            let msg = match read_fleet(&mut &control) {
                Ok(m) => m,
                // Scheduler gone without a drain: finish what is in
                // flight (the scope join below waits for job threads),
                // then exit cleanly.
                Err(e) if is_eof(&e) => return Ok(()),
                Err(e) => return Err(e),
            };
            match msg {
                FleetMsg::Job(job) => {
                    active.begin();
                    let core = core.clone();
                    let writer = &writer;
                    let active = &active;
                    let completed = &completed;
                    s.spawn(move || {
                        let id = job.job;
                        let report = run_fleet_job(core, job, register);
                        if report.error.is_none() {
                            completed.fetch_add(1, Ordering::Relaxed);
                        }
                        send_result(writer, id, report);
                        active.end();
                    });
                }
                FleetMsg::Drain => {
                    active.wait_idle();
                    send_fleet(
                        &mut &control,
                        &FleetMsg::DrainDone {
                            jobs_completed: completed.load(Ordering::Relaxed),
                        },
                    )?;
                    return Ok(());
                }
                other => {
                    return Err(NetError::Protocol(format!(
                        "unexpected control message {other:?}"
                    )));
                }
            }
        }
    });
    core.shutdown();
    served
}

/// In-flight job counter with an idle condvar for drains.
#[derive(Default)]
struct ActiveJobs {
    count: Mutex<usize>,
    idle: Condvar,
}

impl ActiveJobs {
    fn begin(&self) {
        *self.count.lock().unwrap_or_else(|e| e.into_inner()) += 1;
    }
    fn end(&self) {
        let mut n = self.count.lock().unwrap_or_else(|e| e.into_inner());
        *n -= 1;
        if *n == 0 {
            self.idle.notify_all();
        }
    }
    fn wait_idle(&self) {
        let mut n = self.count.lock().unwrap_or_else(|e| e.into_inner());
        while *n > 0 {
            n = self.idle.wait(n).unwrap_or_else(|e| e.into_inner());
        }
    }
}

fn send_result(writer: &Mutex<TcpStream>, job: u32, report: RankReport) {
    let mut w = match writer.lock() {
        Ok(w) => w,
        Err(e) => e.into_inner(),
    };
    // A failed write means the scheduler is gone; the control reader will
    // see EOF and wind the daemon down — nothing to do here.
    let _ = send_fleet(&mut *w, &FleetMsg::JobResult { job, report });
}

/// Executes one rank of one job over a job-scoped view of the warm mesh.
fn run_fleet_job(
    core: Arc<MeshCore>,
    spec: FleetJob,
    register: &(dyn Fn(&mut Registry) + Sync),
) -> RankReport {
    let rank = spec.rank;
    let (program, prepared) = match prepare_job(&spec.model, spec.rank_map.len(), &|r| register(r))
    {
        Ok(p) => p,
        Err(e) => return failed_report(rank, e),
    };
    let options = if spec.optimized {
        RuntimeOptions::optimized()
    } else {
        RuntimeOptions::paper_faithful()
    }
    .with_copy_baseline(spec.copy_baseline);

    let rank_map: Vec<usize> = spec.rank_map.iter().map(|&m| m as usize).collect();
    let mut transport = JobTransport::new(core, spec.job, rank as usize, rank_map);
    let probe = Probe::disabled();
    let t0 = Instant::now();
    // Degraded per-process detector (only this rank's serial accesses).
    let race = options
        .race_detect
        .then(|| sage_runtime::RaceState::new(spec.rank_map.len()));
    let outcome = execute_rank(
        &mut transport,
        &program,
        &prepared,
        &options,
        spec.iterations,
        &probe,
        race.as_ref(),
    );
    let wall_secs = t0.elapsed().as_secs_f64();
    // Finish on both paths: `JobDone` tells peer ranks this rank is out of
    // the job (success or failure), while the mesh link stays warm for
    // every other job on the daemon.
    let (metrics, links) = transport.finish();
    match outcome {
        Ok(outcome) => RankReport {
            rank,
            error: None,
            deposits: outcome
                .deposits
                .into_iter()
                .map(|(key, payload)| (key, payload.into_vec()))
                .collect(),
            wall_secs,
            metrics,
            links,
            events: Vec::new(),
        },
        Err(e) => RankReport {
            rank,
            error: Some(e),
            deposits: Vec::new(),
            wall_secs,
            metrics,
            links,
            events: Vec::new(),
        },
    }
}

/// Reads the `sage-fleet listening on <addr>` banner off a daemon's
/// stdout line.
pub fn parse_fleet_banner(line: &str) -> Option<&str> {
    line.trim().strip_prefix("sage-fleet listening on ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn banner_round_trip() {
        assert_eq!(
            parse_fleet_banner("sage-fleet listening on 127.0.0.1:4099\n"),
            Some("127.0.0.1:4099")
        );
        assert_eq!(parse_fleet_banner("something else"), None);
    }
}
