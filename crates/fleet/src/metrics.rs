//! Fleet-level metrics: what the scheduler counts and reports.
//!
//! Per-job `FabricMetrics` travel inside each job's rank reports; this
//! module covers the service-level view — jobs accepted/rejected (by typed
//! reason)/completed/failed, queue depth and high-water mark, and the same
//! counters broken out per tenant.

use sage_net::codec::{Reader, Writer};
use sage_net::NetError;

/// Job accounting for one tenant.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TenantStats {
    /// Tenant name (empty = anonymous submissions).
    pub tenant: String,
    /// Jobs admitted to the queue.
    pub accepted: u64,
    /// Jobs that completed with every rank reporting success.
    pub completed: u64,
    /// Jobs that completed with a failure (rank error or worker death).
    pub failed: u64,
    /// Jobs refused at admission.
    pub rejected: u64,
}

/// A scheduler metrics snapshot.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FleetStats {
    /// Workers the fleet was built with.
    pub workers: u32,
    /// Workers currently alive.
    pub workers_live: u32,
    /// Jobs admitted to the queue.
    pub accepted: u64,
    /// Jobs completed with every rank succeeding.
    pub completed: u64,
    /// Jobs completed with a failure (rank error or worker death).
    pub failed: u64,
    /// Admissions refused because the bounded queue was full.
    pub rejected_queue_full: u64,
    /// Admissions refused for wanting more ranks than live workers.
    pub rejected_insufficient: u64,
    /// Admissions refused because the fleet was draining.
    pub rejected_draining: u64,
    /// Admissions refused over a protocol-version mismatch.
    pub rejected_version: u64,
    /// Jobs currently queued (admitted, not yet dispatched).
    pub queue_depth: u32,
    /// Deepest the queue has been.
    pub queue_high_water: u32,
    /// Jobs currently executing.
    pub active: u32,
    /// Per-tenant breakdown, sorted by tenant name.
    pub tenants: Vec<TenantStats>,
}

impl FleetStats {
    /// Total rejections across all typed reasons.
    pub fn rejected_total(&self) -> u64 {
        self.rejected_queue_full
            + self.rejected_insufficient
            + self.rejected_draining
            + self.rejected_version
    }

    /// Appends the snapshot to a writer (for `StatsReply`).
    pub fn encode_into(&self, w: &mut Writer) {
        w.u32(self.workers);
        w.u32(self.workers_live);
        w.u64(self.accepted);
        w.u64(self.completed);
        w.u64(self.failed);
        w.u64(self.rejected_queue_full);
        w.u64(self.rejected_insufficient);
        w.u64(self.rejected_draining);
        w.u64(self.rejected_version);
        w.u32(self.queue_depth);
        w.u32(self.queue_high_water);
        w.u32(self.active);
        w.u32(self.tenants.len() as u32);
        for t in &self.tenants {
            w.string(&t.tenant);
            w.u64(t.accepted);
            w.u64(t.completed);
            w.u64(t.failed);
            w.u64(t.rejected);
        }
    }

    /// Reads a snapshot from a reader positioned at its first field.
    pub fn decode_from(r: &mut Reader<'_>) -> Result<FleetStats, NetError> {
        let mut s = FleetStats {
            workers: r.u32()?,
            workers_live: r.u32()?,
            accepted: r.u64()?,
            completed: r.u64()?,
            failed: r.u64()?,
            rejected_queue_full: r.u64()?,
            rejected_insufficient: r.u64()?,
            rejected_draining: r.u64()?,
            rejected_version: r.u64()?,
            queue_depth: r.u32()?,
            queue_high_water: r.u32()?,
            active: r.u32()?,
            tenants: Vec::new(),
        };
        let n = r.u32()? as usize;
        s.tenants.reserve(n.min(1024));
        for _ in 0..n {
            s.tenants.push(TenantStats {
                tenant: r.string()?,
                accepted: r.u64()?,
                completed: r.u64()?,
                failed: r.u64()?,
                rejected: r.u64()?,
            });
        }
        Ok(s)
    }
}
