//! Client-side helpers for talking to a running `sage sched`: submit a
//! job, drain the fleet, fetch a metrics snapshot.

use crate::metrics::FleetStats;
use crate::proto::{read_fleet, send_fleet, FleetMsg, SubmitSpec};
use crate::sched::JobOutcome;
use sage_net::{NetError, RankReport};
use std::net::TcpStream;

fn connect(addr: &str) -> Result<TcpStream, NetError> {
    let stream = TcpStream::connect(addr)
        .map_err(|e| NetError::Io(format!("cannot reach scheduler {addr}: {e}")))?;
    stream.set_nodelay(true)?;
    Ok(stream)
}

/// Submits one job to the scheduler at `addr` and blocks until its
/// outcome. Typed rejections (`QueueFull`, `InsufficientWorkers`,
/// `Draining`, `VersionMismatch`) come back as the matching [`NetError`].
pub fn submit(addr: &str, spec: &SubmitSpec) -> Result<JobOutcome, NetError> {
    let stream = connect(addr)?;
    send_fleet(&mut &stream, &FleetMsg::Submit(spec.clone()))?;
    match read_fleet(&mut &stream)? {
        FleetMsg::Outcome {
            job,
            wall_secs,
            reports,
        } => Ok(JobOutcome {
            job,
            wall_secs,
            reports,
        }),
        other => Err(NetError::Protocol(format!(
            "expected outcome, got {other:?}"
        ))),
    }
}

/// Drains the fleet behind the scheduler at `addr`: in-flight and queued
/// jobs finish, workers ack and exit 0, the scheduler exits 0. Returns the
/// jobs the fleet completed over its lifetime.
pub fn drain_fleet(addr: &str) -> Result<u64, NetError> {
    let stream = connect(addr)?;
    send_fleet(&mut &stream, &FleetMsg::DrainFleet)?;
    match read_fleet(&mut &stream)? {
        FleetMsg::Drained { jobs_completed } => Ok(jobs_completed),
        other => Err(NetError::Protocol(format!(
            "expected drain ack, got {other:?}"
        ))),
    }
}

/// Fetches a metrics snapshot from the scheduler at `addr`.
pub fn fleet_stats(addr: &str) -> Result<FleetStats, NetError> {
    let stream = connect(addr)?;
    send_fleet(&mut &stream, &FleetMsg::Stats)?;
    match read_fleet(&mut &stream)? {
        FleetMsg::StatsReply(stats) => Ok(stats),
        other => Err(NetError::Protocol(format!(
            "expected stats reply, got {other:?}"
        ))),
    }
}

/// Converts an outcome's per-rank reports into the per-rank results
/// [`sage_net::merge_outcomes`] consumes: a missing report means the
/// worker hosting that rank died before reporting.
pub fn reports_to_outcomes(reports: Vec<Option<RankReport>>) -> Vec<Result<RankReport, NetError>> {
    reports
        .into_iter()
        .enumerate()
        .map(|(rank, r)| r.ok_or(NetError::WorkerDied { rank: rank as u32 }))
        .collect()
}

/// Reads the `sage-sched listening on <addr>` banner off the scheduler's
/// stdout line.
pub fn parse_sched_banner(line: &str) -> Option<&str> {
    line.trim().strip_prefix("sage-sched listening on ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn banner_round_trip() {
        assert_eq!(
            parse_sched_banner("sage-sched listening on 127.0.0.1:4100\n"),
            Some("127.0.0.1:4100")
        );
        assert_eq!(parse_sched_banner("nope"), None);
    }

    #[test]
    fn missing_reports_become_worker_died() {
        let outcomes = reports_to_outcomes(vec![None]);
        assert_eq!(outcomes.len(), 1);
        assert_eq!(
            outcomes[0].as_ref().unwrap_err(),
            &NetError::WorkerDied { rank: 0 }
        );
    }
}
