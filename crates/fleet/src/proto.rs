//! The fleet control plane: every message the scheduler, the fleet
//! workers, and submitting clients exchange.
//!
//! All messages travel as [`FrameKind::Fleet`] frames whose payload leads
//! with a message-type byte; typed refusals travel as `Reject` frames
//! carrying a [`RejectReason`]. Codec primitives come from
//! [`sage_net::codec`] — same framing rules as the one-shot job protocol.
//!
//! Link lifecycles:
//!
//! * **scheduler ↔ fleet worker** (one control connection per worker):
//!   `Hello`/`HelloAck` (explicit version exchange; mismatch is a typed
//!   rejection on both ends), `Init`/`InitDone` (mesh establishment), then
//!   any number of `Job`/`JobResult` pairs interleaved, finally
//!   `Drain`/`DrainDone`.
//! * **client ↔ scheduler**: `Submit` → `Outcome` (or `Reject`),
//!   `Stats` → `StatsReply`, `DrainFleet` → `Drained`.

use crate::metrics::FleetStats;
use sage_net::codec::{Reader, Writer};
use sage_net::{Frame, FrameKind, NetError, RankReport, RejectReason, WireError, PROTO_VERSION};
use std::io::{Read, Write};

/// A job submission, as the client hands it to the scheduler.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SubmitSpec {
    /// Control-protocol version the submitter speaks.
    pub proto_version: u32,
    /// Tenant name for per-tenant accounting (empty = anonymous).
    pub tenant: String,
    /// Ranks the job needs.
    pub ranks: u32,
    /// Iterations (data sets) to run.
    pub iterations: u32,
    /// Use the optimized (shared-buffer) run-time options.
    pub optimized: bool,
    /// Run the copy-heavy baseline data plane.
    pub copy_baseline: bool,
    /// The application model, as s-expression text.
    pub model: String,
}

impl SubmitSpec {
    /// A v2 spec with the defaults a plain `sage submit` would use.
    pub fn new(model: impl Into<String>, ranks: u32, iterations: u32) -> SubmitSpec {
        SubmitSpec {
            proto_version: PROTO_VERSION,
            tenant: String::new(),
            ranks,
            iterations,
            optimized: false,
            copy_baseline: false,
            model: model.into(),
        }
    }
}

/// One rank assignment of a scheduled job, as shipped to a fleet worker.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FleetJob {
    /// Scheduler-assigned job id (the wire-header job namespace).
    pub job: u32,
    /// The logical rank this worker hosts for the job.
    pub rank: u32,
    /// Logical rank -> mesh index for every rank of the job.
    pub rank_map: Vec<u32>,
    /// Iterations (data sets) to run.
    pub iterations: u32,
    /// Use the optimized (shared-buffer) run-time options.
    pub optimized: bool,
    /// Run the copy-heavy baseline data plane.
    pub copy_baseline: bool,
    /// The application model, as s-expression text.
    pub model: String,
}

/// A fleet control-plane message.
#[derive(Clone, Debug, PartialEq)]
pub enum FleetMsg {
    /// Scheduler -> worker: version offer.
    Hello {
        /// Control-protocol version the scheduler speaks.
        proto_version: u32,
    },
    /// Worker -> scheduler: version accepted; here is my data-plane
    /// listen address for the mesh.
    HelloAck {
        /// Control-protocol version the worker speaks.
        proto_version: u32,
        /// The worker's data-plane listen address.
        data_addr: String,
    },
    /// Scheduler -> worker: build the mesh.
    Init {
        /// This worker's mesh index.
        worker_index: u32,
        /// Data-plane addresses of all workers, indexed by mesh index.
        peers: Vec<String>,
        /// Heartbeat period override in milliseconds.
        heartbeat_ms: Option<u64>,
    },
    /// Worker -> scheduler: mesh is up, ready for jobs.
    InitDone {
        /// Echo of the worker's mesh index.
        worker_index: u32,
    },
    /// Scheduler -> worker: run one rank of a job.
    Job(FleetJob),
    /// Worker -> scheduler: one rank's report.
    JobResult {
        /// The job the report belongs to.
        job: u32,
        /// The rank report (errors travel in-band).
        report: RankReport,
    },
    /// Scheduler -> worker: finish in-flight jobs, then ack and exit 0.
    Drain,
    /// Worker -> scheduler: drained; how many jobs this worker completed.
    DrainDone {
        /// Jobs this worker completed over its lifetime.
        jobs_completed: u64,
    },
    /// Client -> scheduler: run this job.
    Submit(SubmitSpec),
    /// Scheduler -> client: the job's merged outcome. A `None` report
    /// means the worker hosting that rank died before reporting.
    Outcome {
        /// Scheduler-assigned job id.
        job: u32,
        /// Wall seconds from dispatch to completion.
        wall_secs: f64,
        /// Per-rank reports, indexed by logical rank.
        reports: Vec<Option<RankReport>>,
    },
    /// Client -> scheduler: drain the whole fleet and shut down.
    DrainFleet,
    /// Scheduler -> client: fleet drained.
    Drained {
        /// Jobs completed across the fleet's lifetime.
        jobs_completed: u64,
    },
    /// Client -> scheduler: report metrics.
    Stats,
    /// Scheduler -> client: the metrics snapshot.
    StatsReply(FleetStats),
}

impl FleetMsg {
    /// Serializes the message for a `Fleet` frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            FleetMsg::Hello { proto_version } => {
                w.u8(1);
                w.u32(*proto_version);
            }
            FleetMsg::HelloAck {
                proto_version,
                data_addr,
            } => {
                w.u8(2);
                w.u32(*proto_version);
                w.string(data_addr);
            }
            FleetMsg::Init {
                worker_index,
                peers,
                heartbeat_ms,
            } => {
                w.u8(3);
                w.u32(*worker_index);
                w.u32(peers.len() as u32);
                for p in peers {
                    w.string(p);
                }
                w.opt_u64(*heartbeat_ms);
            }
            FleetMsg::InitDone { worker_index } => {
                w.u8(4);
                w.u32(*worker_index);
            }
            FleetMsg::Job(j) => {
                w.u8(5);
                w.u32(j.job);
                w.u32(j.rank);
                w.u32(j.rank_map.len() as u32);
                for &m in &j.rank_map {
                    w.u32(m);
                }
                w.u32(j.iterations);
                w.u8(u8::from(j.optimized));
                w.u8(u8::from(j.copy_baseline));
                w.string(&j.model);
            }
            FleetMsg::JobResult { job, report } => {
                w.u8(6);
                w.u32(*job);
                report.encode_into(&mut w);
            }
            FleetMsg::Drain => w.u8(7),
            FleetMsg::DrainDone { jobs_completed } => {
                w.u8(8);
                w.u64(*jobs_completed);
            }
            FleetMsg::Submit(s) => {
                w.u8(9);
                w.u32(s.proto_version);
                w.string(&s.tenant);
                w.u32(s.ranks);
                w.u32(s.iterations);
                w.u8(u8::from(s.optimized));
                w.u8(u8::from(s.copy_baseline));
                w.string(&s.model);
            }
            FleetMsg::Outcome {
                job,
                wall_secs,
                reports,
            } => {
                w.u8(10);
                w.u32(*job);
                w.f64(*wall_secs);
                w.u32(reports.len() as u32);
                for r in reports {
                    match r {
                        None => w.u8(0),
                        Some(rep) => {
                            w.u8(1);
                            rep.encode_into(&mut w);
                        }
                    }
                }
            }
            FleetMsg::DrainFleet => w.u8(11),
            FleetMsg::Drained { jobs_completed } => {
                w.u8(12);
                w.u64(*jobs_completed);
            }
            FleetMsg::Stats => w.u8(13),
            FleetMsg::StatsReply(s) => {
                w.u8(14);
                s.encode_into(&mut w);
            }
        }
        w.0
    }

    /// Decodes a `Fleet` frame payload.
    pub fn decode(buf: &[u8]) -> Result<FleetMsg, NetError> {
        let mut r = Reader::new(buf);
        let msg = match r.u8()? {
            1 => FleetMsg::Hello {
                proto_version: r.u32()?,
            },
            2 => FleetMsg::HelloAck {
                proto_version: r.u32()?,
                data_addr: r.string()?,
            },
            3 => FleetMsg::Init {
                worker_index: r.u32()?,
                peers: {
                    let n = r.u32()? as usize;
                    let mut v = Vec::with_capacity(n.min(1024));
                    for _ in 0..n {
                        v.push(r.string()?);
                    }
                    v
                },
                heartbeat_ms: r.opt_u64()?,
            },
            4 => FleetMsg::InitDone {
                worker_index: r.u32()?,
            },
            5 => FleetMsg::Job(FleetJob {
                job: r.u32()?,
                rank: r.u32()?,
                rank_map: {
                    let n = r.u32()? as usize;
                    let mut v = Vec::with_capacity(n.min(1024));
                    for _ in 0..n {
                        v.push(r.u32()?);
                    }
                    v
                },
                iterations: r.u32()?,
                optimized: r.u8()? != 0,
                copy_baseline: r.u8()? != 0,
                model: r.string()?,
            }),
            6 => FleetMsg::JobResult {
                job: r.u32()?,
                report: RankReport::decode_from(&mut r)?,
            },
            7 => FleetMsg::Drain,
            8 => FleetMsg::DrainDone {
                jobs_completed: r.u64()?,
            },
            9 => FleetMsg::Submit(SubmitSpec {
                proto_version: r.u32()?,
                tenant: r.string()?,
                ranks: r.u32()?,
                iterations: r.u32()?,
                optimized: r.u8()? != 0,
                copy_baseline: r.u8()? != 0,
                model: r.string()?,
            }),
            10 => FleetMsg::Outcome {
                job: r.u32()?,
                wall_secs: r.f64()?,
                reports: {
                    let n = r.u32()? as usize;
                    let mut v = Vec::with_capacity(n.min(1024));
                    for _ in 0..n {
                        v.push(match r.u8()? {
                            0 => None,
                            _ => Some(RankReport::decode_from(&mut r)?),
                        });
                    }
                    v
                },
            },
            11 => FleetMsg::DrainFleet,
            12 => FleetMsg::Drained {
                jobs_completed: r.u64()?,
            },
            13 => FleetMsg::Stats,
            14 => FleetMsg::StatsReply(FleetStats::decode_from(&mut r)?),
            other => {
                return Err(NetError::Protocol(format!(
                    "bad fleet message type {other}"
                )));
            }
        };
        r.done()?;
        Ok(msg)
    }
}

/// Writes one fleet message as a `Fleet` frame. Control links carry no
/// sequence discipline (each message is a request or a reply), so seq is
/// always 0.
pub fn send_fleet<W: Write>(w: &mut W, msg: &FleetMsg) -> Result<(), NetError> {
    Frame {
        kind: FrameKind::Fleet,
        tag: 0,
        src: 0,
        dst: 0,
        job: 0,
        seq: 0,
        payload: msg.encode(),
    }
    .write_to(w)
    .map_err(NetError::Wire)
}

/// Writes a typed refusal as a `Reject` frame.
pub fn send_reject<W: Write>(w: &mut W, reason: RejectReason) -> Result<(), NetError> {
    Frame {
        kind: FrameKind::Reject,
        tag: 0,
        src: 0,
        dst: 0,
        job: 0,
        seq: 0,
        payload: reason.encode(),
    }
    .write_to(w)
    .map_err(NetError::Wire)
}

/// Reads one fleet message off a control stream.
///
/// `Reject` frames become the typed errors they carry (a version-mismatch
/// reason surfaces as [`NetError::VersionMismatch`] with `ours`/`theirs`
/// seen from this side). A clean EOF surfaces as
/// `NetError::Wire(WireError::Truncated)` — callers treat it as the peer
/// leaving.
pub fn read_fleet<R: Read>(r: &mut R) -> Result<FleetMsg, NetError> {
    let frame = Frame::read_from(r).map_err(NetError::Wire)?;
    match frame.kind {
        FrameKind::Fleet => FleetMsg::decode(&frame.payload),
        FrameKind::Reject => Err(match RejectReason::decode(&frame.payload)? {
            RejectReason::VersionMismatch { ours, theirs } => NetError::VersionMismatch {
                ours: theirs,
                theirs: ours,
            },
            reason => NetError::Rejected(reason),
        }),
        other => Err(NetError::Protocol(format!(
            "expected fleet frame, got {other:?}"
        ))),
    }
}

/// Whether a control-read error is a clean connection close.
pub fn is_eof(e: &NetError) -> bool {
    matches!(e, NetError::Wire(WireError::Truncated))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::TenantStats;
    use sage_fabric::NodeMetrics;

    fn report(rank: u32) -> RankReport {
        RankReport {
            rank,
            error: None,
            deposits: vec![((1, 0, 0), vec![1, 2, 3])],
            wall_secs: 0.5,
            metrics: NodeMetrics {
                messages_sent: 2,
                ..NodeMetrics::default()
            },
            links: Vec::new(),
            events: Vec::new(),
        }
    }

    #[test]
    fn all_messages_round_trip() {
        let msgs = vec![
            FleetMsg::Hello { proto_version: 2 },
            FleetMsg::HelloAck {
                proto_version: 2,
                data_addr: "127.0.0.1:9000".into(),
            },
            FleetMsg::Init {
                worker_index: 1,
                peers: vec!["a:1".into(), "b:2".into()],
                heartbeat_ms: Some(50),
            },
            FleetMsg::InitDone { worker_index: 1 },
            FleetMsg::Job(FleetJob {
                job: 7,
                rank: 1,
                rank_map: vec![2, 0],
                iterations: 8,
                optimized: true,
                copy_baseline: false,
                model: "(app demo)".into(),
            }),
            FleetMsg::JobResult {
                job: 7,
                report: report(1),
            },
            FleetMsg::Drain,
            FleetMsg::DrainDone { jobs_completed: 9 },
            FleetMsg::Submit(SubmitSpec::new("(app demo)", 2, 8)),
            FleetMsg::Outcome {
                job: 7,
                wall_secs: 1.25,
                reports: vec![Some(report(0)), None],
            },
            FleetMsg::DrainFleet,
            FleetMsg::Drained { jobs_completed: 9 },
            FleetMsg::Stats,
            FleetMsg::StatsReply(FleetStats {
                workers: 4,
                workers_live: 3,
                accepted: 10,
                completed: 8,
                failed: 1,
                rejected_queue_full: 1,
                rejected_insufficient: 0,
                rejected_draining: 0,
                rejected_version: 0,
                queue_depth: 1,
                queue_high_water: 5,
                active: 1,
                tenants: vec![TenantStats {
                    tenant: "alice".into(),
                    accepted: 10,
                    completed: 8,
                    failed: 1,
                    rejected: 1,
                }],
            }),
        ];
        for msg in msgs {
            assert_eq!(FleetMsg::decode(&msg.encode()).unwrap(), msg);
        }
    }

    #[test]
    fn reject_frames_surface_typed_errors() {
        let mut buf = Vec::new();
        send_reject(&mut buf, RejectReason::QueueFull { depth: 4 }).unwrap();
        let err = read_fleet(&mut std::io::Cursor::new(buf)).unwrap_err();
        assert_eq!(
            err,
            NetError::Rejected(RejectReason::QueueFull { depth: 4 })
        );

        let mut buf = Vec::new();
        send_reject(
            &mut buf,
            RejectReason::VersionMismatch { ours: 2, theirs: 1 },
        )
        .unwrap();
        let err = read_fleet(&mut std::io::Cursor::new(buf)).unwrap_err();
        // ours/theirs flip to this side's perspective.
        assert_eq!(err, NetError::VersionMismatch { ours: 1, theirs: 2 });
    }

    #[test]
    fn eof_is_detectable() {
        let err = read_fleet(&mut std::io::Cursor::new(Vec::new())).unwrap_err();
        assert!(is_eof(&err));
    }
}
