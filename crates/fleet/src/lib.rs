//! # sage-fleet
//!
//! Persistent multi-tenant job service for the SAGE run-time: long-lived
//! worker daemons keep their TCP mesh warm across jobs, and a scheduler
//! multiplexes many concurrent jobs over that one fabric.
//!
//! The paper's run-time infrastructure assumed a *standing* machine — CSPI
//! nodes that boot once and then serve application after application. The
//! classic `sage launch` path reproduces one run end-to-end but pays
//! process spawn + mesh establishment per job; this crate reproduces the
//! standing-machine model: pay mesh setup once, then amortize it over
//! every job the fleet serves.
//!
//! * [`worker`] — the `sage fleet` daemon: one mesh endpoint
//!   ([`sage_net::MeshCore`]), many concurrent jobs, each over a
//!   job-scoped [`sage_net::JobTransport`] (the wire header's job field
//!   keeps their traffic separate on shared links).
//! * [`sched`] — the `sage sched` scheduler: typed admission control
//!   (version, drain state, fleet size, bounded queue), least-loaded rank
//!   placement, per-job and per-tenant accounting, graceful drain.
//! * [`proto`] — the control plane both ends speak ([`FleetMsg`]), with
//!   explicit version exchange up front.
//! * [`metrics`] — the service-level counters ([`FleetStats`]).
//! * [`client`] — what `sage submit` / `sage fleet drain` /
//!   `sage fleet stats` call.
//!
//! Parity bar: a job through the fleet produces sink output bit-identical
//! to the same model under `sage run --transport tcp` — the fleet changes
//! job *delivery*, never job *results*.

#![warn(missing_docs)]

pub mod client;
pub mod metrics;
pub mod proto;
pub mod sched;
pub mod worker;

pub use client::{drain_fleet, fleet_stats, parse_sched_banner, reports_to_outcomes, submit};
pub use metrics::{FleetStats, TenantStats};
pub use proto::{FleetJob, FleetMsg, SubmitSpec};
pub use sched::{serve_sched, JobOutcome, SchedConfig, Scheduler};
pub use worker::{parse_fleet_banner, serve_fleet};
