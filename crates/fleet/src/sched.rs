//! The job scheduler: admission control, a bounded queue, least-loaded
//! placement over the fleet, and per-job/per-tenant accounting.
//!
//! One [`Scheduler`] owns the control connections to every fleet worker.
//! Submissions pass admission (protocol version, drain state, fleet size,
//! queue bound — each refusal a typed [`RejectReason`]), wait in a bounded
//! FIFO queue, and dispatch when enough workers have free job slots. Each
//! dispatched job gets a fresh job id — the wire-header namespace that
//! keeps its traffic separate on the shared warm mesh — and a rank map
//! choosing which workers host which logical ranks.
//!
//! Threads: one dispatcher (pops the queue when slots free up) and one
//! reader per worker (collects `JobResult`s, detects worker death as
//! control-connection EOF). A dead worker fails its in-flight ranks with a
//! typed outcome; queued jobs simply dispatch to the survivors.
//!
//! [`serve_sched`] wraps a [`Scheduler`] in the TCP service the
//! `sage submit` / `sage fleet drain` / `sage fleet stats` clients speak.

use crate::metrics::{FleetStats, TenantStats};
use crate::proto::{is_eof, read_fleet, send_fleet, send_reject, FleetJob, FleetMsg, SubmitSpec};
use sage_net::{NetError, RankReport, RejectReason, PROTO_VERSION};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io::Write as _;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Scheduler tuning knobs.
#[derive(Clone, Debug)]
pub struct SchedConfig {
    /// Bound on the admission queue; submissions beyond it are refused
    /// with [`RejectReason::QueueFull`].
    pub queue_depth: usize,
    /// Concurrent job ranks one worker will host before the dispatcher
    /// holds further jobs in the queue.
    pub slots_per_worker: usize,
    /// Heartbeat period override shipped to the fleet mesh.
    pub heartbeat_ms: Option<u64>,
}

impl Default for SchedConfig {
    fn default() -> SchedConfig {
        SchedConfig {
            queue_depth: 128,
            slots_per_worker: 64,
            heartbeat_ms: None,
        }
    }
}

/// What a submission resolves to once the job has run (or failed).
#[derive(Clone, Debug, PartialEq)]
pub struct JobOutcome {
    /// The scheduler-assigned job id.
    pub job: u32,
    /// Wall seconds from dispatch to the last rank reporting.
    pub wall_secs: f64,
    /// Per-rank reports, indexed by logical rank. `None` means the worker
    /// hosting that rank died before reporting.
    pub reports: Vec<Option<RankReport>>,
}

/// One fleet worker's control link, from the scheduler's side.
struct WorkerLink {
    writer: Mutex<TcpStream>,
    alive: AtomicBool,
    /// Job ranks currently dispatched to this worker.
    active: AtomicUsize,
}

struct QueuedJob {
    job: u32,
    spec: SubmitSpec,
    tx: mpsc::Sender<Result<JobOutcome, NetError>>,
}

struct PendingJob {
    tenant: String,
    /// Logical rank -> worker (== mesh) index.
    assigned: Vec<usize>,
    reports: Vec<Option<RankReport>>,
    /// Ranks whose worker died before reporting.
    dead: Vec<bool>,
    /// Slots resolved so far (report arrived or worker died).
    filled: usize,
    tx: mpsc::Sender<Result<JobOutcome, NetError>>,
    t0: Instant,
}

#[derive(Default)]
struct SchedState {
    queue: VecDeque<QueuedJob>,
    pending: HashMap<u32, PendingJob>,
    next_job: u32,
    draining: bool,
    accepted: u64,
    completed: u64,
    failed: u64,
    rejected_queue_full: u64,
    rejected_insufficient: u64,
    rejected_draining: u64,
    rejected_version: u64,
    queue_high_water: u32,
    tenants: BTreeMap<String, TenantStats>,
    drain_done: Vec<Option<u64>>,
}

impl SchedState {
    fn new(workers: usize) -> SchedState {
        SchedState {
            // Job id 0 is the classic one-shot namespace; fleet jobs start
            // above it.
            next_job: 1,
            drain_done: vec![None; workers],
            ..SchedState::default()
        }
    }

    fn tenant(&mut self, name: &str) -> &mut TenantStats {
        self.tenants
            .entry(name.to_string())
            .or_insert_with(|| TenantStats {
                tenant: name.to_string(),
                ..TenantStats::default()
            })
    }
}

/// The fleet scheduler. See the module docs for the thread layout.
pub struct Scheduler {
    workers: Vec<Arc<WorkerLink>>,
    state: Mutex<SchedState>,
    cv: Condvar,
    stop: AtomicBool,
    cfg: SchedConfig,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl Scheduler {
    /// Connects to every fleet worker, exchanges versions, wires the mesh
    /// (each worker learns every other worker's data-plane address), and
    /// starts the dispatcher and reader threads.
    pub fn connect(addrs: &[String], cfg: SchedConfig) -> Result<Arc<Scheduler>, NetError> {
        if addrs.is_empty() {
            return Err(NetError::Protocol("fleet needs at least one worker".into()));
        }
        let mut streams = Vec::with_capacity(addrs.len());
        let mut data_addrs = Vec::with_capacity(addrs.len());
        for addr in addrs {
            let stream = TcpStream::connect(addr)
                .map_err(|e| NetError::Io(format!("cannot reach fleet worker {addr}: {e}")))?;
            stream.set_nodelay(true)?;
            send_fleet(
                &mut &stream,
                &FleetMsg::Hello {
                    proto_version: PROTO_VERSION,
                },
            )?;
            match read_fleet(&mut &stream)? {
                FleetMsg::HelloAck {
                    proto_version,
                    data_addr,
                } => {
                    if proto_version != PROTO_VERSION {
                        return Err(NetError::VersionMismatch {
                            ours: PROTO_VERSION,
                            theirs: proto_version,
                        });
                    }
                    data_addrs.push(data_addr);
                }
                other => {
                    return Err(NetError::Protocol(format!(
                        "expected hello ack, got {other:?}"
                    )));
                }
            }
            streams.push(stream);
        }
        for (i, stream) in streams.iter().enumerate() {
            send_fleet(
                &mut &*stream,
                &FleetMsg::Init {
                    worker_index: i as u32,
                    peers: data_addrs.clone(),
                    heartbeat_ms: cfg.heartbeat_ms,
                },
            )?;
        }
        for stream in &streams {
            match read_fleet(&mut &*stream)? {
                FleetMsg::InitDone { .. } => {}
                other => {
                    return Err(NetError::Protocol(format!(
                        "expected init ack, got {other:?}"
                    )));
                }
            }
        }

        let readers: Vec<TcpStream> = streams
            .iter()
            .map(TcpStream::try_clone)
            .collect::<Result<_, _>>()?;
        let workers = streams
            .into_iter()
            .map(|s| {
                Arc::new(WorkerLink {
                    writer: Mutex::new(s),
                    alive: AtomicBool::new(true),
                    active: AtomicUsize::new(0),
                })
            })
            .collect();
        let sched = Arc::new(Scheduler {
            workers,
            state: Mutex::new(SchedState::new(addrs.len())),
            cv: Condvar::new(),
            stop: AtomicBool::new(false),
            cfg,
            handles: Mutex::new(Vec::new()),
        });
        let mut handles = Vec::with_capacity(addrs.len() + 1);
        for (i, stream) in readers.into_iter().enumerate() {
            let sd = sched.clone();
            handles.push(std::thread::spawn(move || sd.reader_loop(i, &stream)));
        }
        let sd = sched.clone();
        handles.push(std::thread::spawn(move || sd.dispatch_loop()));
        *sched.handles.lock().unwrap_or_else(|e| e.into_inner()) = handles;
        Ok(sched)
    }

    /// Submits one job and blocks until its outcome. Run failures travel
    /// inside the `Ok` outcome's reports; an `Err` is an admission refusal
    /// (typed) or a scheduler shutdown.
    pub fn submit(&self, spec: &SubmitSpec) -> Result<JobOutcome, NetError> {
        let mut state = self.lock();
        if spec.proto_version != PROTO_VERSION {
            state.rejected_version += 1;
            state.tenant(&spec.tenant).rejected += 1;
            return Err(NetError::VersionMismatch {
                ours: PROTO_VERSION,
                theirs: spec.proto_version,
            });
        }
        if state.draining {
            state.rejected_draining += 1;
            state.tenant(&spec.tenant).rejected += 1;
            return Err(NetError::Rejected(RejectReason::Draining));
        }
        let live = self.live_workers();
        if spec.ranks == 0 || spec.ranks as usize > live {
            state.rejected_insufficient += 1;
            state.tenant(&spec.tenant).rejected += 1;
            return Err(NetError::Rejected(RejectReason::InsufficientWorkers {
                want: spec.ranks,
                have: live as u32,
            }));
        }
        if state.queue.len() >= self.cfg.queue_depth {
            state.rejected_queue_full += 1;
            state.tenant(&spec.tenant).rejected += 1;
            return Err(NetError::Rejected(RejectReason::QueueFull {
                depth: self.cfg.queue_depth as u32,
            }));
        }
        let job = state.next_job;
        state.next_job += 1;
        state.accepted += 1;
        state.tenant(&spec.tenant).accepted += 1;
        let (tx, rx) = mpsc::channel();
        state.queue.push_back(QueuedJob {
            job,
            spec: spec.clone(),
            tx,
        });
        state.queue_high_water = state.queue_high_water.max(state.queue.len() as u32);
        self.cv.notify_all();
        drop(state);
        rx.recv()
            .map_err(|_| NetError::Protocol("scheduler shut down before job completed".into()))?
    }

    /// Stops admitting, lets the queue and in-flight jobs finish, tells
    /// every worker to drain (they ack and exit 0), and returns the total
    /// jobs the fleet completed over its lifetime.
    pub fn drain(&self) -> Result<u64, NetError> {
        let mut state = self.lock();
        state.draining = true;
        self.cv.notify_all();
        while !(state.queue.is_empty() && state.pending.is_empty()) {
            state = self.wait(state);
        }
        drop(state);
        for w in &self.workers {
            if w.alive.load(Ordering::SeqCst) {
                let mut wr = w.writer.lock().unwrap_or_else(|e| e.into_inner());
                let _ = send_fleet(&mut *wr, &FleetMsg::Drain);
            }
        }
        let mut state = self.lock();
        loop {
            let all = (0..self.workers.len()).all(|i| {
                state.drain_done[i].is_some() || !self.workers[i].alive.load(Ordering::SeqCst)
            });
            if all {
                break;
            }
            state = self.wait(state);
        }
        let total = state.drain_done.iter().flatten().sum();
        drop(state);
        self.stop.store(true, Ordering::SeqCst);
        self.cv.notify_all();
        let handles = std::mem::take(&mut *self.handles.lock().unwrap_or_else(|e| e.into_inner()));
        for h in handles {
            let _ = h.join();
        }
        Ok(total)
    }

    /// A metrics snapshot.
    pub fn stats(&self) -> FleetStats {
        let state = self.lock();
        FleetStats {
            workers: self.workers.len() as u32,
            workers_live: self.live_workers() as u32,
            accepted: state.accepted,
            completed: state.completed,
            failed: state.failed,
            rejected_queue_full: state.rejected_queue_full,
            rejected_insufficient: state.rejected_insufficient,
            rejected_draining: state.rejected_draining,
            rejected_version: state.rejected_version,
            queue_depth: state.queue.len() as u32,
            queue_high_water: state.queue_high_water,
            active: state.pending.len() as u32,
            tenants: state.tenants.values().cloned().collect(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, SchedState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Condvar wait with a timeout: a missed wakeup costs at most 100 ms,
    /// and the timeout doubles as the stop-flag poll for the dispatcher.
    fn wait<'a>(&self, state: MutexGuard<'a, SchedState>) -> MutexGuard<'a, SchedState> {
        self.cv
            .wait_timeout(state, Duration::from_millis(100))
            .unwrap_or_else(|e| e.into_inner())
            .0
    }

    fn live_workers(&self) -> usize {
        self.workers
            .iter()
            .filter(|w| w.alive.load(Ordering::SeqCst))
            .count()
    }

    fn dispatch_loop(&self) {
        let mut state = self.lock();
        while !self.stop.load(Ordering::SeqCst) {
            match self.try_dispatch(&mut state) {
                Some((job, spec, assigned)) => {
                    drop(state);
                    self.ship(job, &spec, &assigned);
                    state = self.lock();
                }
                None => state = self.wait(state),
            }
        }
    }

    /// Pops the front job if enough workers have free slots; jobs that can
    /// no longer fit the surviving fleet complete with a typed refusal.
    fn try_dispatch(&self, state: &mut SchedState) -> Option<(u32, SubmitSpec, Vec<usize>)> {
        loop {
            let ranks = state.queue.front()?.spec.ranks as usize;
            let live: Vec<usize> = (0..self.workers.len())
                .filter(|&i| self.workers[i].alive.load(Ordering::SeqCst))
                .collect();
            if live.len() < ranks {
                // Admitted when the fleet was big enough, but workers died
                // while it queued. The front exists — `ranks` was just read
                // from it — so the `?` can never actually bail here.
                let q = state.queue.pop_front()?;
                state.rejected_insufficient += 1;
                state.failed += 1;
                state.tenant(&q.spec.tenant).failed += 1;
                let _ =
                    q.tx.send(Err(NetError::Rejected(RejectReason::InsufficientWorkers {
                        want: q.spec.ranks,
                        have: live.len() as u32,
                    })));
                continue;
            }
            let mut free: Vec<usize> = live
                .into_iter()
                .filter(|&i| {
                    self.workers[i].active.load(Ordering::SeqCst) < self.cfg.slots_per_worker
                })
                .collect();
            if free.len() < ranks {
                return None;
            }
            free.sort_by_key(|&i| (self.workers[i].active.load(Ordering::SeqCst), i));
            // Same front-exists contract as the refusal branch above.
            let q = state.queue.pop_front()?;
            let assigned: Vec<usize> = free[..ranks].to_vec();
            for &w in &assigned {
                self.workers[w].active.fetch_add(1, Ordering::SeqCst);
            }
            state.pending.insert(
                q.job,
                PendingJob {
                    tenant: q.spec.tenant.clone(),
                    assigned: assigned.clone(),
                    reports: vec![None; ranks],
                    dead: vec![false; ranks],
                    filled: 0,
                    tx: q.tx,
                    t0: Instant::now(),
                },
            );
            return Some((q.job, q.spec, assigned));
        }
    }

    fn ship(&self, job: u32, spec: &SubmitSpec, assigned: &[usize]) {
        let rank_map: Vec<u32> = assigned.iter().map(|&w| w as u32).collect();
        for (rank, &w) in assigned.iter().enumerate() {
            let msg = FleetMsg::Job(FleetJob {
                job,
                rank: rank as u32,
                rank_map: rank_map.clone(),
                iterations: spec.iterations,
                optimized: spec.optimized,
                copy_baseline: spec.copy_baseline,
                model: spec.model.clone(),
            });
            let sent = {
                let mut wr = self.workers[w]
                    .writer
                    .lock()
                    .unwrap_or_else(|e| e.into_inner());
                send_fleet(&mut *wr, &msg)
            };
            if sent.is_err() {
                self.worker_down(w);
            }
        }
    }

    fn reader_loop(&self, w: usize, stream: &TcpStream) {
        loop {
            match read_fleet(&mut &*stream) {
                Ok(FleetMsg::JobResult { job, report }) => {
                    let mut state = self.lock();
                    if let Some(p) = state.pending.get_mut(&job) {
                        let rank = report.rank as usize;
                        if rank < p.reports.len() && p.reports[rank].is_none() && !p.dead[rank] {
                            p.reports[rank] = Some(report);
                            p.filled += 1;
                            self.workers[p.assigned[rank]]
                                .active
                                .fetch_sub(1, Ordering::SeqCst);
                            if p.filled == p.reports.len() {
                                self.complete_locked(&mut state, job);
                            }
                        }
                    }
                    self.cv.notify_all();
                }
                Ok(FleetMsg::DrainDone { jobs_completed }) => {
                    let mut state = self.lock();
                    state.drain_done[w] = Some(jobs_completed);
                    self.cv.notify_all();
                }
                Ok(other) => {
                    eprintln!("sage-sched: worker {w} spoke out of turn ({other:?})");
                    self.worker_down(w);
                    return;
                }
                Err(e) => {
                    if !is_eof(&e) {
                        eprintln!("sage-sched: worker {w} link error: {e}");
                    }
                    self.worker_down(w);
                    return;
                }
            }
        }
    }

    /// Marks a worker dead and resolves its unreported in-flight ranks.
    /// The peers of those ranks see the death on the mesh and report typed
    /// failures of their own, so every slot still resolves.
    fn worker_down(&self, w: usize) {
        if !self.workers[w].alive.swap(false, Ordering::SeqCst) {
            return;
        }
        let mut state = self.lock();
        let jobs: Vec<u32> = state.pending.keys().copied().collect();
        for job in jobs {
            let done = {
                let Some(p) = state.pending.get_mut(&job) else {
                    continue;
                };
                let mut newly = false;
                for rank in 0..p.assigned.len() {
                    if p.assigned[rank] == w && p.reports[rank].is_none() && !p.dead[rank] {
                        p.dead[rank] = true;
                        p.filled += 1;
                        newly = true;
                    }
                }
                newly && p.filled == p.reports.len()
            };
            if done {
                self.complete_locked(&mut state, job);
            }
        }
        self.cv.notify_all();
    }

    fn complete_locked(&self, state: &mut SchedState, job: u32) {
        let Some(p) = state.pending.remove(&job) else {
            return;
        };
        let ok = p
            .reports
            .iter()
            .all(|r| r.as_ref().is_some_and(|r| r.error.is_none()));
        if ok {
            state.completed += 1;
            state.tenant(&p.tenant).completed += 1;
        } else {
            state.failed += 1;
            state.tenant(&p.tenant).failed += 1;
        }
        let _ = p.tx.send(Ok(JobOutcome {
            job,
            wall_secs: p.t0.elapsed().as_secs_f64(),
            reports: p.reports,
        }));
    }
}

/// Serves the client protocol over `listener` until a client drains the
/// fleet: `Submit` → `Outcome` (or a typed `Reject`), `Stats` →
/// `StatsReply`, `DrainFleet` → `Drained` then a clean return — exit 0.
pub fn serve_sched(listener: TcpListener, sched: Arc<Scheduler>) -> Result<(), NetError> {
    let addr = listener.local_addr()?;
    println!("sage-sched listening on {addr}");
    std::io::stdout().flush()?;
    listener.set_nonblocking(true)?;
    let stop = Arc::new(AtomicBool::new(false));
    loop {
        if stop.load(Ordering::SeqCst) {
            return Ok(());
        }
        match listener.accept() {
            Ok((conn, _)) => {
                let sched = sched.clone();
                let stop = stop.clone();
                // Detached on purpose: a client that connects and idles
                // must not block the drain-triggered shutdown.
                std::thread::spawn(move || handle_client(&conn, &sched, &stop));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) => return Err(e.into()),
        }
    }
}

fn handle_client(conn: &TcpStream, sched: &Scheduler, stop: &AtomicBool) {
    let _ = conn.set_nodelay(true);
    let _ = conn.set_nonblocking(false);
    loop {
        let msg = match read_fleet(&mut &*conn) {
            Ok(m) => m,
            Err(_) => return,
        };
        let sent = match msg {
            FleetMsg::Submit(spec) => match sched.submit(&spec) {
                Ok(out) => send_fleet(
                    &mut &*conn,
                    &FleetMsg::Outcome {
                        job: out.job,
                        wall_secs: out.wall_secs,
                        reports: out.reports,
                    },
                ),
                Err(NetError::VersionMismatch { ours, theirs }) => {
                    send_reject(&mut &*conn, RejectReason::VersionMismatch { ours, theirs })
                }
                Err(NetError::Rejected(reason)) => send_reject(&mut &*conn, reason),
                Err(e) => {
                    eprintln!("sage-sched: submit failed: {e}");
                    return;
                }
            },
            FleetMsg::Stats => send_fleet(&mut &*conn, &FleetMsg::StatsReply(sched.stats())),
            FleetMsg::DrainFleet => {
                let n = match sched.drain() {
                    Ok(n) => n,
                    Err(e) => {
                        eprintln!("sage-sched: drain failed: {e}");
                        0
                    }
                };
                let _ = send_fleet(&mut &*conn, &FleetMsg::Drained { jobs_completed: n });
                stop.store(true, Ordering::SeqCst);
                return;
            }
            other => {
                eprintln!("sage-sched: unexpected client message {other:?}");
                return;
            }
        };
        if sent.is_err() {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bare_scheduler() -> Scheduler {
        Scheduler {
            workers: Vec::new(),
            state: Mutex::new(SchedState::new(0)),
            cv: Condvar::new(),
            stop: AtomicBool::new(false),
            cfg: SchedConfig::default(),
            handles: Mutex::new(Vec::new()),
        }
    }

    #[test]
    fn admission_refusals_are_typed_and_counted() {
        let sched = bare_scheduler();

        let mut stale = SubmitSpec::new("(app demo)", 1, 1);
        stale.proto_version = 1;
        assert_eq!(
            sched.submit(&stale),
            Err(NetError::VersionMismatch {
                ours: PROTO_VERSION,
                theirs: 1
            })
        );

        assert_eq!(
            sched.submit(&SubmitSpec::new("(app demo)", 1, 1)),
            Err(NetError::Rejected(RejectReason::InsufficientWorkers {
                want: 1,
                have: 0
            }))
        );

        sched.lock().draining = true;
        assert_eq!(
            sched.submit(&SubmitSpec::new("(app demo)", 1, 1)),
            Err(NetError::Rejected(RejectReason::Draining))
        );

        let stats = sched.stats();
        assert_eq!(stats.rejected_version, 1);
        assert_eq!(stats.rejected_insufficient, 1);
        assert_eq!(stats.rejected_draining, 1);
        assert_eq!(stats.rejected_total(), 3);
        assert_eq!(stats.accepted, 0);
        assert_eq!(stats.tenants.len(), 1);
        assert_eq!(stats.tenants[0].rejected, 3);
    }

    #[test]
    fn config_defaults() {
        let cfg = SchedConfig::default();
        assert_eq!(cfg.queue_depth, 128);
        assert_eq!(cfg.slots_per_worker, 64);
        assert_eq!(cfg.heartbeat_ms, None);
    }
}
