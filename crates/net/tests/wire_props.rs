//! Property tests for the framed wire codec: every frame the sender can
//! construct — arbitrary tags, ranks, sequence numbers, payload sizes
//! including empty — must round-trip through encode/decode bit-exactly, and
//! any single-byte corruption of an encoded frame must be rejected with a
//! typed [`WireError`], never accepted as a different valid frame.

use proptest::prelude::*;
use sage_net::{Frame, FrameKind, WireError};

const HEADER_LEN: usize = 44;

fn kinds() -> impl Strategy<Value = FrameKind> {
    prop_oneof![
        Just(FrameKind::Hello),
        Just(FrameKind::Data),
        Just(FrameKind::Heartbeat),
        Just(FrameKind::Job),
        Just(FrameKind::Result),
        Just(FrameKind::Goodbye),
        Just(FrameKind::JobDone),
        Just(FrameKind::Reject),
        Just(FrameKind::Fleet),
    ]
}

/// Payload bytes derived from a seed so sizes and contents co-vary without
/// generating megabytes per case. Size 0 (control frames) is included.
fn payload() -> impl Strategy<Value = Vec<u8>> {
    (0usize..=4096, 0u64..u64::MAX).prop_map(|(len, seed)| {
        (0..len)
            .map(|i| (seed.wrapping_mul(i as u64 + 1).wrapping_mul(0x9e37_79b9)) as u8)
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// encode -> decode reconstructs every field and the payload exactly,
    /// and reports the exact number of bytes consumed.
    #[test]
    fn round_trips_bit_exactly(
        kind in kinds(),
        tag in 0u64..u64::MAX,
        src in 0u32..u32::MAX,
        dst in 0u32..u32::MAX,
        job in 0u32..u32::MAX,
        seq in 0u64..u64::MAX,
        payload in payload(),
    ) {
        let frame = Frame { kind, tag, src, dst, job, seq, payload };
        let bytes = frame.encode().unwrap();
        prop_assert_eq!(bytes.len(), HEADER_LEN + frame.payload.len());
        let (decoded, consumed) = Frame::decode(&bytes).expect("valid frame must decode");
        prop_assert_eq!(consumed, bytes.len());
        prop_assert_eq!(decoded.kind, frame.kind);
        prop_assert_eq!(decoded.tag, frame.tag);
        prop_assert_eq!(decoded.src, frame.src);
        prop_assert_eq!(decoded.dst, frame.dst);
        prop_assert_eq!(decoded.job, frame.job);
        prop_assert_eq!(decoded.seq, frame.seq);
        prop_assert_eq!(decoded.payload, frame.payload);
    }

    /// Flipping any one byte of an encoded frame must produce a typed
    /// decode error (checksum, magic, version, kind, length...) — never a
    /// silently different frame.
    #[test]
    fn corrupted_frames_rejected_with_typed_error(
        tag in 0u64..u64::MAX,
        src in 0u32..256,
        dst in 0u32..256,
        seq in 0u64..4096,
        payload in payload(),
        victim_seed in 0usize..usize::MAX,
        flip in 1u8..=255,
    ) {
        let frame = Frame { kind: FrameKind::Data, tag, src, dst, job: 3, seq, payload };
        let mut bytes = frame.encode().unwrap();
        let victim = victim_seed % bytes.len();
        bytes[victim] ^= flip;
        match Frame::decode(&bytes) {
            Ok(_) => prop_assert!(
                false,
                "corruption at byte {} (xor {:#04x}) decoded successfully",
                victim, flip
            ),
            // Any typed wire error is a correct rejection; corruption of the
            // length field may legitimately surface as Truncated/Oversized.
            Err(
                WireError::Checksum { .. }
                | WireError::BadMagic(_)
                | WireError::BadVersion(_)
                | WireError::BadKind(_)
                | WireError::Truncated
                | WireError::Oversized(_),
            ) => {}
            Err(e) => prop_assert!(false, "unexpected error variant: {e}"),
        }
    }

    /// A truncated frame — any strict prefix of the encoding — decodes to
    /// `Truncated`, the signal to wait for more bytes.
    #[test]
    fn every_prefix_is_truncated(
        tag in 0u64..u64::MAX,
        payload in payload(),
        cut_seed in 0usize..usize::MAX,
    ) {
        let frame = Frame { kind: FrameKind::Data, tag, src: 0, dst: 1, job: 0, seq: 7, payload };
        let bytes = frame.encode().unwrap();
        let cut = cut_seed % bytes.len(); // strict prefix: 0..len-1 bytes
        match Frame::decode(&bytes[..cut]) {
            Err(WireError::Truncated) => {}
            other => prop_assert!(false, "prefix of {cut} bytes gave {other:?}"),
        }
    }
}
