//! Control-plane payloads: the job description the launcher ships to each
//! worker, and the report each worker sends back.
//!
//! Serialization rides the shared [`crate::codec`] primitives. The
//! control protocol carries its own explicit version ([`PROTO_VERSION`]),
//! checked as the *first* field of the Job handshake — so a speaker of a
//! different revision gets a typed [`NetError::VersionMismatch`] instead
//! of a codec parse failure deep in some unrelated field.

use crate::codec::{Reader, Writer};
use crate::error::NetError;
use sage_fabric::{LinkMetrics, NodeMetrics};
use sage_runtime::RuntimeError;
use sage_visualizer::{EventKind, ProbeEvent};

/// Control-protocol version. v1 had no version field (its absence is how
/// v1 is detected: the first u32 of a v1 JobSpec is the rank, which is
/// < 2^16 in practice, while v2+ leads with this constant). v2 added the
/// version field, the per-job heartbeat override, and the fleet messages.
/// v3 added the per-job `race_detect` switch. v4 added the streaming
/// pipeline knob (`pipeline` + per-buffer `pipeline_depths`).
pub const PROTO_VERSION: u32 = 4;

/// Everything one worker needs to run one rank of a job.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobSpec {
    /// Control-protocol version the sender speaks (see [`PROTO_VERSION`]).
    pub proto_version: u32,
    /// The rank this worker hosts.
    pub rank: u32,
    /// Total ranks in the job.
    pub ranks: u32,
    /// Iterations (data sets) to run.
    pub iterations: u32,
    /// Use the optimized (shared-buffer) run-time options.
    pub optimized: bool,
    /// Record probe events and ship them back in the report.
    pub probes: bool,
    /// Run the copy-heavy baseline data plane instead of the zero-copy
    /// shared-payload path (see `RuntimeOptions::copy_baseline`).
    pub copy_baseline: bool,
    /// Arm the vector-clock race detector on every rank (see
    /// `RuntimeOptions::race_detect`). Each worker process only observes
    /// its own rank's accesses, so over TCP the detector runs in degraded
    /// per-process mode; full cross-rank validation is the in-process
    /// backend's job.
    pub race_detect: bool,
    /// Heartbeat period override in milliseconds (`None` = transport
    /// default). Lets soak tests and the fleet drain path tune the
    /// staleness window from the CLI.
    pub heartbeat_ms: Option<u64>,
    /// Streaming pipeline depth (`None` = lock-step; see
    /// `RuntimeOptions::pipeline`). Every rank must run the same mode or
    /// their transfer tags disagree, so the launcher ships it in the spec.
    pub pipeline: Option<u32>,
    /// Per-buffer ring-depth caps for streaming, indexed by buffer id
    /// (empty = global depth; see `RuntimeOptions::pipeline_depths`).
    /// Computed by the launcher from the static pipeline-safety plan — the
    /// net layer ships the numbers without depending on the checker.
    pub pipeline_depths: Vec<u32>,
    /// The application model, as s-expression text. Each worker
    /// regenerates the glue program from this deterministically, so every
    /// rank — and the launcher — agrees on tables and schedules without
    /// shipping compiled structures.
    pub model: String,
    /// Data-plane listen addresses of all ranks, indexed by rank.
    pub peers: Vec<String>,
}

/// What one rank produced.
#[derive(Clone, Debug, PartialEq)]
pub struct RankReport {
    /// The reporting rank.
    pub rank: u32,
    /// The run error, if the rank failed.
    pub error: Option<RuntimeError>,
    /// Sink deposits made on this rank: `(fn_id, iteration, thread)` ->
    /// stripe bytes.
    pub deposits: Vec<((u32, u32, u32), Vec<u8>)>,
    /// Wall-clock seconds this rank spent executing the program.
    pub wall_secs: f64,
    /// This rank's traffic counters.
    pub metrics: NodeMetrics,
    /// Wire counters for each outgoing link of this rank.
    pub links: Vec<LinkMetrics>,
    /// Probe events recorded on this rank (empty unless probes were on).
    pub events: Vec<ProbeEvent>,
}

// ---- RuntimeError codec ----------------------------------------------

pub(crate) fn write_runtime_error(w: &mut Writer, e: &RuntimeError) {
    match e {
        RuntimeError::UnknownFunction { block, function } => {
            w.u8(1);
            w.string(block);
            w.string(function);
        }
        RuntimeError::Kernel { block, message } => {
            w.u8(2);
            w.string(block);
            w.string(message);
        }
        RuntimeError::BadProgram(m) => {
            w.u8(3);
            w.string(m);
        }
        RuntimeError::NodeFailed { node } => {
            w.u8(4);
            w.u32(*node);
        }
        RuntimeError::PeerFailed { node, peer } => {
            w.u8(5);
            w.u32(*node);
            w.u32(*peer);
        }
        RuntimeError::TransferFailed {
            node,
            peer,
            attempts,
        } => {
            w.u8(6);
            w.u32(*node);
            w.u32(*peer);
            w.u32(*attempts);
        }
        RuntimeError::Timeout { node, peer } => {
            w.u8(7);
            w.u32(*node);
            w.u32(*peer);
        }
        RuntimeError::Assembly {
            fn_id,
            iteration,
            message,
        } => {
            w.u8(8);
            w.u32(*fn_id);
            w.u32(*iteration);
            w.string(message);
        }
        RuntimeError::RaceDetected {
            port,
            first,
            second,
        } => {
            w.u8(9);
            w.string(port);
            w.string(first);
            w.string(second);
        }
    }
}

pub(crate) fn read_runtime_error(r: &mut Reader<'_>) -> Result<RuntimeError, NetError> {
    Ok(match r.u8()? {
        1 => RuntimeError::UnknownFunction {
            block: r.string()?,
            function: r.string()?,
        },
        2 => RuntimeError::Kernel {
            block: r.string()?,
            message: r.string()?,
        },
        3 => RuntimeError::BadProgram(r.string()?),
        4 => RuntimeError::NodeFailed { node: r.u32()? },
        5 => RuntimeError::PeerFailed {
            node: r.u32()?,
            peer: r.u32()?,
        },
        6 => RuntimeError::TransferFailed {
            node: r.u32()?,
            peer: r.u32()?,
            attempts: r.u32()?,
        },
        7 => RuntimeError::Timeout {
            node: r.u32()?,
            peer: r.u32()?,
        },
        8 => RuntimeError::Assembly {
            fn_id: r.u32()?,
            iteration: r.u32()?,
            message: r.string()?,
        },
        9 => RuntimeError::RaceDetected {
            port: r.string()?,
            first: r.string()?,
            second: r.string()?,
        },
        other => return Err(NetError::Protocol(format!("bad error code {other}"))),
    })
}

// ---- EventKind codec --------------------------------------------------

fn event_kind_code(k: EventKind) -> u8 {
    match k {
        EventKind::FnStart => 1,
        EventKind::FnEnd => 2,
        EventKind::XferStart => 3,
        EventKind::XferEnd => 4,
        EventKind::SourceEmit => 5,
        EventKind::SinkAbsorb => 6,
        EventKind::BufAlloc => 7,
        EventKind::XferRetry => 8,
        EventKind::Fault => 9,
        EventKind::NetConnect => 10,
        EventKind::NetSend => 11,
        EventKind::NetRecv => 12,
        EventKind::NetRetry => 13,
        EventKind::NetTimeout => 14,
    }
}

fn event_kind_from(code: u8) -> Result<EventKind, NetError> {
    Ok(match code {
        1 => EventKind::FnStart,
        2 => EventKind::FnEnd,
        3 => EventKind::XferStart,
        4 => EventKind::XferEnd,
        5 => EventKind::SourceEmit,
        6 => EventKind::SinkAbsorb,
        7 => EventKind::BufAlloc,
        8 => EventKind::XferRetry,
        9 => EventKind::Fault,
        10 => EventKind::NetConnect,
        11 => EventKind::NetSend,
        12 => EventKind::NetRecv,
        13 => EventKind::NetRetry,
        14 => EventKind::NetTimeout,
        other => return Err(NetError::Protocol(format!("bad event kind {other}"))),
    })
}

// ---- JobSpec / RankReport ---------------------------------------------

impl JobSpec {
    /// Serializes the job for a `Job` frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.u32(self.proto_version);
        w.u32(self.rank);
        w.u32(self.ranks);
        w.u32(self.iterations);
        w.u8(u8::from(self.optimized));
        w.u8(u8::from(self.probes));
        w.u8(u8::from(self.copy_baseline));
        w.u8(u8::from(self.race_detect));
        w.opt_u64(self.heartbeat_ms);
        w.opt_u64(self.pipeline.map(u64::from));
        w.u32(self.pipeline_depths.len() as u32);
        for &d in &self.pipeline_depths {
            w.u32(d);
        }
        w.string(&self.model);
        w.u32(self.peers.len() as u32);
        for p in &self.peers {
            w.string(p);
        }
        w.0
    }

    /// Decodes a `Job` frame payload.
    ///
    /// The version field is checked *first*: a mismatched speaker gets a
    /// typed [`NetError::VersionMismatch`] before any layout-dependent
    /// field is touched.
    pub fn decode(buf: &[u8]) -> Result<JobSpec, NetError> {
        let mut r = Reader::new(buf);
        let proto_version = r.u32()?;
        if proto_version != PROTO_VERSION {
            return Err(NetError::VersionMismatch {
                ours: PROTO_VERSION,
                theirs: proto_version,
            });
        }
        let spec = JobSpec {
            proto_version,
            rank: r.u32()?,
            ranks: r.u32()?,
            iterations: r.u32()?,
            optimized: r.u8()? != 0,
            probes: r.u8()? != 0,
            copy_baseline: r.u8()? != 0,
            race_detect: r.u8()? != 0,
            heartbeat_ms: r.opt_u64()?,
            pipeline: r.opt_u64()?.map(|d| d as u32),
            pipeline_depths: {
                let n = r.u32()? as usize;
                let mut v = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    v.push(r.u32()?);
                }
                v
            },
            model: r.string()?,
            peers: {
                let n = r.u32()? as usize;
                let mut v = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    v.push(r.string()?);
                }
                v
            },
        };
        r.done()?;
        Ok(spec)
    }
}

impl RankReport {
    /// Serializes the report for a `Result` frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        self.encode_into(&mut w);
        w.0
    }

    /// Appends the report to an existing writer (lets fleet messages embed
    /// reports without an intermediate copy).
    pub fn encode_into(&self, w: &mut Writer) {
        w.u32(self.rank);
        match &self.error {
            None => w.u8(0),
            Some(e) => {
                w.u8(1);
                write_runtime_error(w, e);
            }
        }
        w.u32(self.deposits.len() as u32);
        for ((f, i, t), bytes) in &self.deposits {
            w.u32(*f);
            w.u32(*i);
            w.u32(*t);
            w.bytes(bytes);
        }
        w.f64(self.wall_secs);
        let m = &self.metrics;
        w.u64(m.messages_sent);
        w.u64(m.bytes_sent);
        w.u64(m.messages_received);
        w.u64(m.bytes_received);
        w.u64(m.retries);
        w.u64(m.faults_observed);
        w.u64(m.mem_high_water);
        w.u32(self.links.len() as u32);
        for l in &self.links {
            w.u32(l.src);
            w.u32(l.dst);
            w.u64(l.messages);
            w.u64(l.bytes);
        }
        w.u32(self.events.len() as u32);
        for e in &self.events {
            w.f64(e.time);
            w.u32(e.node);
            w.u8(event_kind_code(e.kind));
            w.u32(e.id);
            w.u32(e.iteration);
        }
    }

    /// Decodes a `Result` frame payload.
    pub fn decode(buf: &[u8]) -> Result<RankReport, NetError> {
        let mut r = Reader::new(buf);
        let report = RankReport::decode_from(&mut r)?;
        r.done()?;
        Ok(report)
    }

    /// Reads one report from a reader positioned at its first field.
    pub fn decode_from(r: &mut Reader<'_>) -> Result<RankReport, NetError> {
        let rank = r.u32()?;
        let error = match r.u8()? {
            0 => None,
            _ => Some(read_runtime_error(r)?),
        };
        let n_dep = r.u32()? as usize;
        let mut deposits = Vec::with_capacity(n_dep.min(4096));
        for _ in 0..n_dep {
            let key = (r.u32()?, r.u32()?, r.u32()?);
            deposits.push((key, r.bytes()?));
        }
        let wall_secs = r.f64()?;
        let metrics = NodeMetrics {
            messages_sent: r.u64()?,
            bytes_sent: r.u64()?,
            messages_received: r.u64()?,
            bytes_received: r.u64()?,
            retries: r.u64()?,
            faults_observed: r.u64()?,
            mem_high_water: r.u64()?,
            ..NodeMetrics::default()
        };
        let n_links = r.u32()? as usize;
        let mut links = Vec::with_capacity(n_links.min(4096));
        for _ in 0..n_links {
            links.push(LinkMetrics {
                src: r.u32()?,
                dst: r.u32()?,
                messages: r.u64()?,
                bytes: r.u64()?,
            });
        }
        let n_ev = r.u32()? as usize;
        let mut events = Vec::with_capacity(n_ev.min(65536));
        for _ in 0..n_ev {
            events.push(ProbeEvent {
                time: r.f64()?,
                node: r.u32()?,
                kind: event_kind_from(r.u8()?)?,
                id: r.u32()?,
                iteration: r.u32()?,
            });
        }
        Ok(RankReport {
            rank,
            error,
            deposits,
            wall_secs,
            metrics,
            links,
            events,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> JobSpec {
        JobSpec {
            proto_version: PROTO_VERSION,
            rank: 3,
            ranks: 4,
            iterations: 7,
            optimized: true,
            probes: false,
            copy_baseline: true,
            race_detect: true,
            heartbeat_ms: Some(50),
            pipeline: Some(3),
            pipeline_depths: vec![2, 3],
            model: "(app demo)".into(),
            peers: vec!["127.0.0.1:1".into(), "127.0.0.1:2".into()],
        }
    }

    #[test]
    fn job_round_trip() {
        let j = spec();
        assert_eq!(JobSpec::decode(&j.encode()).unwrap(), j);
    }

    #[test]
    fn job_version_mismatch_is_typed() {
        let mut j = spec();
        j.proto_version = 1;
        assert_eq!(
            JobSpec::decode(&j.encode()).unwrap_err(),
            NetError::VersionMismatch {
                ours: PROTO_VERSION,
                theirs: 1
            }
        );
    }

    #[test]
    fn report_round_trip_with_error() {
        let rep = RankReport {
            rank: 2,
            error: Some(RuntimeError::PeerFailed { node: 2, peer: 0 }),
            deposits: vec![((1, 0, 2), vec![9, 8, 7]), ((1, 1, 2), vec![])],
            wall_secs: 0.25,
            metrics: NodeMetrics {
                messages_sent: 5,
                bytes_sent: 100,
                mem_high_water: 4096,
                ..NodeMetrics::default()
            },
            links: vec![LinkMetrics {
                src: 2,
                dst: 0,
                messages: 5,
                bytes: 100,
            }],
            events: vec![ProbeEvent::new(0.5, 2, EventKind::NetSend, 0, 1)],
        };
        assert_eq!(RankReport::decode(&rep.encode()).unwrap(), rep);
    }

    #[test]
    fn all_runtime_error_variants_round_trip() {
        let errs = [
            RuntimeError::UnknownFunction {
                block: "b".into(),
                function: "f".into(),
            },
            RuntimeError::Kernel {
                block: "b".into(),
                message: "m".into(),
            },
            RuntimeError::BadProgram("p".into()),
            RuntimeError::NodeFailed { node: 1 },
            RuntimeError::PeerFailed { node: 1, peer: 2 },
            RuntimeError::TransferFailed {
                node: 1,
                peer: 2,
                attempts: 3,
            },
            RuntimeError::Timeout { node: 1, peer: 2 },
            RuntimeError::Assembly {
                fn_id: 1,
                iteration: 2,
                message: "short stripe".into(),
            },
        ];
        for e in errs {
            let mut w = Writer::new();
            write_runtime_error(&mut w, &e);
            let mut r = Reader::new(&w.0);
            assert_eq!(read_runtime_error(&mut r).unwrap(), e);
        }
    }

    #[test]
    fn truncated_payload_is_typed_error() {
        let enc = spec().encode();
        assert!(matches!(
            JobSpec::decode(&enc[..enc.len() - 1]).unwrap_err(),
            NetError::Protocol(_)
        ));
    }
}
