//! The framed wire protocol.
//!
//! Every message on a SAGE TCP link is one length-prefixed frame:
//!
//! ```text
//! offset  size  field
//!      0     4  magic      0x53414745 ("SAGE"), big-endian
//!      4     1  version    protocol version (currently 2)
//!      5     1  kind       frame kind (Hello/Data/.../JobDone/Reject/Fleet)
//!      6     2  reserved   zero
//!      8     8  tag        message tag (Data) or kind-specific
//!     16     4  src        sending rank
//!     20     4  dst        receiving rank
//!     24     4  job        job namespace the frame belongs to (0 outside
//!                          the fleet: one-shot jobs and control traffic)
//!     28     8  seq        per-link sequence number, strictly increasing
//!     36     4  len        payload length in bytes
//!     40     4  checksum   FNV-1a-32 over header (checksum field zeroed)
//!                          then payload
//!     44   len  payload
//! ```
//!
//! Version history: v1 had no `job` field (40-byte header, one job per
//! mesh). v2 threads a 32-bit job id through every frame so a persistent
//! fleet worker can multiplex many concurrent jobs — each with its own rank
//! namespace — over one warm mesh connection per peer. A v1 speaker is
//! rejected with a typed [`WireError::BadVersion`], never misparsed.
//!
//! The checksum covers the whole frame, so any single corrupted byte —
//! header or payload — is detected (FNV-1a's xor-then-odd-multiply step is
//! bijective mod 2^32, so two frames differing in one byte cannot collide
//! at the same offset). Decoding failures are typed ([`WireError`]), never
//! panics, and never read past `len`.

use std::io::{Read, Write};

/// Frame magic: "SAGE" in ASCII.
pub const MAGIC: u32 = 0x5341_4745;
/// Current protocol version (v2: per-frame job namespace for the fleet).
pub const VERSION: u8 = 2;
/// Fixed header size in bytes.
pub const HEADER_LEN: usize = 44;
/// Maximum accepted payload (256 MiB) — bounds allocation on decode.
pub const MAX_PAYLOAD: u32 = 256 << 20;

/// What a frame carries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameKind {
    /// Data-plane handshake: identifies the connecting rank.
    Hello = 1,
    /// A tagged run-time message between ranks.
    Data = 2,
    /// Periodic liveness beacon.
    Heartbeat = 3,
    /// Launcher -> worker: the serialized job description.
    Job = 4,
    /// Worker -> launcher: the serialized rank report.
    Result = 5,
    /// Clean shutdown: the sender will transmit nothing further.
    Goodbye = 6,
    /// Job-scoped goodbye: the sender will transmit nothing further *for
    /// the frame's job id*; the link itself stays warm for other jobs.
    JobDone = 7,
    /// Typed admission/handshake rejection; payload is a serialized
    /// `RejectReason` (version mismatch, queue full, ...).
    Reject = 8,
    /// Fleet control-plane message (scheduler <-> fleet worker <->
    /// submitter); payload carries its own message-type byte.
    Fleet = 9,
}

impl FrameKind {
    fn from_u8(v: u8) -> Option<FrameKind> {
        Some(match v {
            1 => FrameKind::Hello,
            2 => FrameKind::Data,
            3 => FrameKind::Heartbeat,
            4 => FrameKind::Job,
            5 => FrameKind::Result,
            6 => FrameKind::Goodbye,
            7 => FrameKind::JobDone,
            8 => FrameKind::Reject,
            9 => FrameKind::Fleet,
            _ => return None,
        })
    }
}

/// One wire frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame {
    /// Frame kind.
    pub kind: FrameKind,
    /// Message tag (meaningful for `Data`; 0 otherwise).
    pub tag: u64,
    /// Sending rank.
    pub src: u32,
    /// Receiving rank.
    pub dst: u32,
    /// Job namespace (0 outside the fleet).
    pub job: u32,
    /// Per-link sequence number.
    pub seq: u64,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

/// A typed frame-decoding failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The magic bytes were wrong — not a SAGE frame.
    BadMagic(u32),
    /// The protocol version is not one we speak.
    BadVersion(u8),
    /// The kind byte names no known frame kind.
    BadKind(u8),
    /// The declared payload length exceeds [`MAX_PAYLOAD`].
    Oversized(u32),
    /// An outgoing payload exceeds [`MAX_PAYLOAD`] (or `u32::MAX`) and
    /// cannot be framed: encoding it would truncate the header length
    /// field and desynchronize the stream.
    PayloadTooLarge(usize),
    /// The frame checksum did not match the received bytes.
    Checksum {
        /// Checksum declared in the header.
        expected: u32,
        /// Checksum computed over the received bytes.
        computed: u32,
    },
    /// The input ended before the declared frame did.
    Truncated,
    /// The underlying reader/writer failed.
    Io(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::BadMagic(m) => write!(f, "bad frame magic {m:#010x}"),
            WireError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            WireError::BadKind(k) => write!(f, "unknown frame kind {k}"),
            WireError::Oversized(n) => write!(f, "payload of {n} bytes exceeds limit"),
            WireError::PayloadTooLarge(n) => {
                write!(f, "cannot frame {n}-byte payload (limit {MAX_PAYLOAD})")
            }
            WireError::Checksum { expected, computed } => write!(
                f,
                "frame checksum mismatch: header says {expected:#010x}, bytes hash to {computed:#010x}"
            ),
            WireError::Truncated => write!(f, "frame truncated"),
            WireError::Io(m) => write!(f, "frame i/o failed: {m}"),
        }
    }
}

impl std::error::Error for WireError {}

/// FNV-1a 32-bit over `chunks` in order.
fn fnv1a_32(chunks: &[&[u8]]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for chunk in chunks {
        for &b in *chunk {
            h ^= u32::from(b);
            h = h.wrapping_mul(0x0100_0193);
        }
    }
    h
}

/// Checks an outgoing payload length against [`MAX_PAYLOAD`] before it is
/// narrowed to the 32-bit header field. A bare `as u32` here once truncated
/// >4 GiB payloads silently, desynchronizing the stream.
fn check_len(len: usize) -> Result<u32, WireError> {
    if len > MAX_PAYLOAD as usize {
        return Err(WireError::PayloadTooLarge(len));
    }
    Ok(len as u32)
}

#[allow(clippy::too_many_arguments)]
fn header_parts(
    kind: FrameKind,
    tag: u64,
    src: u32,
    dst: u32,
    job: u32,
    seq: u64,
    len: u32,
    checksum: u32,
) -> [u8; HEADER_LEN] {
    let mut h = [0u8; HEADER_LEN];
    h[0..4].copy_from_slice(&MAGIC.to_be_bytes());
    h[4] = VERSION;
    h[5] = kind as u8;
    // 6..8 reserved, zero.
    h[8..16].copy_from_slice(&tag.to_be_bytes());
    h[16..20].copy_from_slice(&src.to_be_bytes());
    h[20..24].copy_from_slice(&dst.to_be_bytes());
    h[24..28].copy_from_slice(&job.to_be_bytes());
    h[28..36].copy_from_slice(&seq.to_be_bytes());
    h[36..40].copy_from_slice(&len.to_be_bytes());
    h[40..44].copy_from_slice(&checksum.to_be_bytes());
    h
}

/// Writes one frame from its parts as vectored header+payload I/O.
///
/// The header lives on the stack and the payload is written straight from
/// the caller's slice — no per-frame assembly buffer, no payload copy.
/// This is the hot-path writer: [`Frame::write_to`] delegates here, and the
/// transport writes queued [`Payload`](sage_fabric::Payload)s through it
/// without ever constructing a `Frame`.
#[allow(clippy::too_many_arguments)]
pub fn write_parts<W: Write>(
    w: &mut W,
    kind: FrameKind,
    tag: u64,
    src: u32,
    dst: u32,
    job: u32,
    seq: u64,
    payload: &[u8],
) -> Result<(), WireError> {
    let len = check_len(payload.len())?;
    let mut header = header_parts(kind, tag, src, dst, job, seq, len, 0);
    let checksum = fnv1a_32(&[&header, payload]);
    header[40..44].copy_from_slice(&checksum.to_be_bytes());
    write_all_vectored(w, &header, payload)
        .and_then(|()| w.flush())
        .map_err(|e| WireError::Io(e.to_string()))
}

/// Outcome of [`try_write_control`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TryWrite {
    /// The frame is fully written and flushed.
    Sent,
    /// The socket had no buffer space and *nothing* was written — the
    /// stream is untouched and the caller may simply try again later.
    Skipped,
    /// The stream is broken (I/O error or stalled write).
    Failed,
}

/// Writes a payload-less control frame, giving up *before* the first byte
/// if the socket has no buffer space (`WouldBlock`), leaving the stream
/// clean. Once any byte is out the remainder is driven to completion with
/// the usual sleep-retry — abandoning a frame mid-write would poison the
/// link for every later frame.
///
/// Built for heartbeats out of the transport's single I/O thread: a full
/// send buffer means queued data frames are already waiting to refresh
/// the peer's liveness, so the beat is redundant — while blocking on it
/// would stall reads and beats for *every other* link behind one
/// saturated peer.
pub fn try_write_control<W: Write>(
    w: &mut W,
    kind: FrameKind,
    src: u32,
    dst: u32,
    job: u32,
    seq: u64,
) -> TryWrite {
    let mut header = header_parts(kind, 0, src, dst, job, seq, 0, 0);
    let checksum = fnv1a_32(&[&header, &[]]);
    header[40..44].copy_from_slice(&checksum.to_be_bytes());
    let mut written = 0usize;
    while written < header.len() {
        match w.write(&header[written..]) {
            Ok(0) => return TryWrite::Failed,
            Ok(n) => written += n,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if written == 0 {
                    return TryWrite::Skipped;
                }
                std::thread::sleep(std::time::Duration::from_micros(100));
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return TryWrite::Failed,
        }
    }
    match w.flush() {
        Ok(()) => TryWrite::Sent,
        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => TryWrite::Sent,
        Err(_) => TryWrite::Failed,
    }
}

/// Drives `write_vectored` until both slices are fully written, falling
/// back gracefully on writers that consume partial buffers. Nonblocking
/// sockets (the poll-loop transport shares one fd between its nonblocking
/// read half and this writer) are handled by a brief sleep-and-retry on
/// `WouldBlock` — the kernel send buffer drains in the background.
fn write_all_vectored<W: Write>(
    w: &mut W,
    mut header: &[u8],
    mut payload: &[u8],
) -> std::io::Result<()> {
    while !header.is_empty() || !payload.is_empty() {
        let bufs = [
            std::io::IoSlice::new(header),
            std::io::IoSlice::new(payload),
        ];
        let n = match w.write_vectored(&bufs) {
            Ok(n) => n,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(std::time::Duration::from_micros(100));
                continue;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::WriteZero,
                "frame write stalled",
            ));
        }
        if n >= header.len() {
            payload = &payload[n - header.len()..];
            header = &header[header.len()..];
        } else {
            header = &header[n..];
        }
    }
    Ok(())
}

impl Frame {
    /// A data frame in job namespace 0 (one-shot jobs).
    pub fn data(src: u32, dst: u32, tag: u64, seq: u64, payload: Vec<u8>) -> Frame {
        Frame {
            kind: FrameKind::Data,
            tag,
            src,
            dst,
            job: 0,
            seq,
            payload,
        }
    }

    /// A payload-less control frame (job namespace 0).
    pub fn control(kind: FrameKind, src: u32, dst: u32, seq: u64) -> Frame {
        Frame {
            kind,
            tag: 0,
            src,
            dst,
            job: 0,
            seq,
            payload: Vec::new(),
        }
    }

    /// Builder: re-tags the frame into a job namespace.
    pub fn in_job(mut self, job: u32) -> Frame {
        self.job = job;
        self
    }

    /// The frame's checksum: FNV-1a-32 over the header with the checksum
    /// field zeroed, then the payload.
    pub fn checksum(&self) -> u32 {
        let h = header_parts(
            self.kind,
            self.tag,
            self.src,
            self.dst,
            self.job,
            self.seq,
            self.payload.len() as u32,
            0,
        );
        fnv1a_32(&[&h, &self.payload])
    }

    /// Serializes the frame (header + payload).
    ///
    /// Rejects payloads longer than [`MAX_PAYLOAD`] with
    /// [`WireError::PayloadTooLarge`] instead of truncating the length
    /// field.
    pub fn encode(&self) -> Result<Vec<u8>, WireError> {
        let len = check_len(self.payload.len())?;
        let h = header_parts(
            self.kind,
            self.tag,
            self.src,
            self.dst,
            self.job,
            self.seq,
            len,
            self.checksum(),
        );
        let mut out = Vec::with_capacity(HEADER_LEN + self.payload.len());
        out.extend_from_slice(&h);
        out.extend_from_slice(&self.payload);
        Ok(out)
    }

    /// Decodes one frame from the front of `buf`, returning the frame and
    /// the number of bytes consumed.
    pub fn decode(buf: &[u8]) -> Result<(Frame, usize), WireError> {
        if buf.len() < HEADER_LEN {
            return Err(WireError::Truncated);
        }
        let magic = be_u32(buf, 0);
        if magic != MAGIC {
            return Err(WireError::BadMagic(magic));
        }
        let version = buf[4];
        if version != VERSION {
            return Err(WireError::BadVersion(version));
        }
        let kind = FrameKind::from_u8(buf[5]).ok_or(WireError::BadKind(buf[5]))?;
        let tag = be_u64(buf, 8);
        let src = be_u32(buf, 16);
        let dst = be_u32(buf, 20);
        let job = be_u32(buf, 24);
        let seq = be_u64(buf, 28);
        let len = be_u32(buf, 36);
        if len > MAX_PAYLOAD {
            return Err(WireError::Oversized(len));
        }
        let expected = be_u32(buf, 40);
        let total = HEADER_LEN + len as usize;
        if buf.len() < total {
            return Err(WireError::Truncated);
        }
        // Hash the received bytes themselves (checksum field zeroed), not a
        // re-serialization of the parsed fields — otherwise corruption in
        // bytes no field covers (e.g. reserved) would go unnoticed.
        let mut header = [0u8; HEADER_LEN];
        header.copy_from_slice(&buf[..HEADER_LEN]);
        header[40..44].fill(0);
        let computed = fnv1a_32(&[&header, &buf[HEADER_LEN..total]]);
        if computed != expected {
            return Err(WireError::Checksum { expected, computed });
        }
        let frame = Frame {
            kind,
            tag,
            src,
            dst,
            job,
            seq,
            payload: buf[HEADER_LEN..total].to_vec(),
        };
        Ok((frame, total))
    }

    /// Writes the frame to a stream without building an assembly buffer
    /// (see [`write_parts`]).
    pub fn write_to<W: Write>(&self, w: &mut W) -> Result<(), WireError> {
        write_parts(
            w,
            self.kind,
            self.tag,
            self.src,
            self.dst,
            self.job,
            self.seq,
            &self.payload,
        )
    }

    /// Reads exactly one frame from a stream.
    ///
    /// The payload is read directly into its final `Vec` and the checksum
    /// is computed over the header and payload chunks in place — no
    /// combined header+payload staging buffer, no second payload copy.
    ///
    /// A clean EOF before the first header byte returns `Truncated`; so
    /// does an EOF mid-frame (the reader can distinguish via the stream
    /// state if it needs to).
    pub fn read_from<R: Read>(r: &mut R) -> Result<Frame, WireError> {
        let mut header = [0u8; HEADER_LEN];
        read_exact(r, &mut header)?;
        // Parse magic and length first so we size the payload read.
        let magic = be_u32(&header, 0);
        if magic != MAGIC {
            return Err(WireError::BadMagic(magic));
        }
        let len = be_u32(&header, 36);
        if len > MAX_PAYLOAD {
            return Err(WireError::Oversized(len));
        }
        let mut payload = vec![0u8; len as usize];
        read_exact(r, &mut payload)?;
        // Full frame consumed: the stream is at a frame boundary whatever
        // the verdict below, so a validation failure poisons one frame, not
        // the connection framing.
        let version = header[4];
        if version != VERSION {
            return Err(WireError::BadVersion(version));
        }
        let kind = FrameKind::from_u8(header[5]).ok_or(WireError::BadKind(header[5]))?;
        let expected = be_u32(&header, 40);
        header[40..44].fill(0);
        let computed = fnv1a_32(&[&header, &payload]);
        if computed != expected {
            return Err(WireError::Checksum { expected, computed });
        }
        Ok(Frame {
            kind,
            tag: be_u64(&header, 8),
            src: be_u32(&header, 16),
            dst: be_u32(&header, 20),
            job: be_u32(&header, 24),
            seq: be_u64(&header, 28),
            payload,
        })
    }
}

/// Big-endian `u32` at `buf[at..at + 4]`. The callers have already
/// length-checked the header, so the indexing is in bounds by construction.
fn be_u32(buf: &[u8], at: usize) -> u32 {
    u32::from_be_bytes([buf[at], buf[at + 1], buf[at + 2], buf[at + 3]])
}

/// Big-endian `u64` at `buf[at..at + 8]`; same bounds contract as [`be_u32`].
fn be_u64(buf: &[u8], at: usize) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&buf[at..at + 8]);
    u64::from_be_bytes(b)
}

fn read_exact<R: Read>(r: &mut R, buf: &mut [u8]) -> Result<(), WireError> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            WireError::Truncated
        } else {
            WireError::Io(e.to_string())
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Frame {
        Frame::data(2, 5, 0xdead_beef, 42, vec![1, 2, 3, 4, 5]).in_job(9)
    }

    #[test]
    fn round_trip() {
        let f = sample();
        let bytes = f.encode().unwrap();
        let (g, n) = Frame::decode(&bytes).unwrap();
        assert_eq!(n, bytes.len());
        assert_eq!(f, g);
        assert_eq!(g.job, 9);
    }

    #[test]
    fn empty_payload_round_trips() {
        let f = Frame::control(FrameKind::Heartbeat, 0, 1, 7);
        let (g, n) = Frame::decode(&f.encode().unwrap()).unwrap();
        assert_eq!(n, HEADER_LEN);
        assert_eq!(f, g);
    }

    #[test]
    fn job_scoped_kinds_round_trip() {
        for kind in [FrameKind::JobDone, FrameKind::Reject, FrameKind::Fleet] {
            let f = Frame::control(kind, 3, 1, 11).in_job(77);
            let (g, _) = Frame::decode(&f.encode().unwrap()).unwrap();
            assert_eq!(g.kind, kind);
            assert_eq!(g.job, 77);
        }
    }

    #[test]
    fn v1_frames_rejected_with_typed_version_error() {
        // A v1 header (40 bytes, no job field) leads with the same magic;
        // decoding must fail on the version byte, not misparse the layout.
        let mut bytes = sample().encode().unwrap();
        bytes[4] = 1;
        assert_eq!(Frame::decode(&bytes).unwrap_err(), WireError::BadVersion(1));
    }

    #[test]
    fn every_single_byte_corruption_detected() {
        let bytes = sample().encode().unwrap();
        for i in 0..bytes.len() {
            for flip in [0x01u8, 0x80] {
                let mut bad = bytes.clone();
                bad[i] ^= flip;
                assert!(
                    Frame::decode(&bad).is_err(),
                    "corruption at byte {i} (xor {flip:#x}) went undetected"
                );
            }
        }
    }

    #[test]
    fn truncation_detected() {
        let bytes = sample().encode().unwrap();
        for cut in [0, 1, HEADER_LEN - 1, HEADER_LEN, bytes.len() - 1] {
            assert_eq!(
                Frame::decode(&bytes[..cut]).unwrap_err(),
                WireError::Truncated
            );
        }
    }

    #[test]
    fn oversized_rejected_before_allocation() {
        let mut bytes = sample().encode().unwrap();
        bytes[36..40].copy_from_slice(&u32::MAX.to_be_bytes());
        assert!(matches!(
            Frame::decode(&bytes).unwrap_err(),
            WireError::Oversized(_)
        ));
    }

    #[test]
    fn payload_too_large_rejected_at_encode() {
        // One byte past the limit: the old `len as u32` narrowing would
        // have accepted this (and silently truncated anything past 4 GiB).
        let f = Frame::data(0, 1, 0, 0, vec![0u8; MAX_PAYLOAD as usize + 1]);
        assert_eq!(
            f.encode().unwrap_err(),
            WireError::PayloadTooLarge(MAX_PAYLOAD as usize + 1)
        );
        let mut sink = Vec::new();
        assert_eq!(
            f.write_to(&mut sink).unwrap_err(),
            WireError::PayloadTooLarge(MAX_PAYLOAD as usize + 1)
        );
        assert!(sink.is_empty(), "nothing may reach the stream");
        let e = write_parts(&mut sink, FrameKind::Data, 0, 0, 1, 0, 0, &f.payload).unwrap_err();
        assert!(matches!(e, WireError::PayloadTooLarge(_)));
        assert!(e.to_string().contains("cannot frame"));
    }

    #[test]
    fn stream_read_write() {
        let mut buf = Vec::new();
        sample().write_to(&mut buf).unwrap();
        Frame::control(FrameKind::Goodbye, 1, 0, 9)
            .write_to(&mut buf)
            .unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        assert_eq!(Frame::read_from(&mut cursor).unwrap(), sample());
        assert_eq!(
            Frame::read_from(&mut cursor).unwrap().kind,
            FrameKind::Goodbye
        );
        assert_eq!(
            Frame::read_from(&mut cursor).unwrap_err(),
            WireError::Truncated
        );
    }
}
