//! The worker daemon: hosts one rank of a distributed job.
//!
//! Protocol, from the worker's side:
//!
//! 1. bind the listen address, print `sage-worker listening on <addr>` so
//!    the launcher (or an operator) can collect the bound port;
//! 2. accept the control connection and read one `Job` frame;
//! 3. regenerate the glue program from the shipped model text (the
//!    generation pipeline is deterministic, so every rank derives identical
//!    tables and schedules), build the TCP mesh with the peer ranks, and run
//!    this rank's schedule;
//! 4. send one `Result` frame back with deposits, counters, and trace
//!    events — run failures travel in-band as typed `RuntimeError`s.
//!
//! Set `SAGE_NET_CHAOS_EXIT_MS=<millis>` to make the worker kill its own
//! process that long after accepting a job — the chaos hook the
//! kill-a-worker-mid-run tests use.

use crate::error::{NetError, RejectReason};
use crate::proto::{JobSpec, RankReport};
use crate::transport::{NetConfig, TcpTransport};
use crate::wire::{Frame, FrameKind};
use sage_core::{model_from_sexpr, Placement, Project};
use sage_fabric::NodeMetrics;
use sage_model::HardwareShelf;
use sage_runtime::{execute_rank, prepare, Registry, RuntimeError};
use sage_visualizer::{Collector, Probe};
use std::io::Write;
use std::net::TcpListener;
use std::sync::Arc;
use std::time::Instant;

/// Environment variable: if set to a millisecond count, the worker exits
/// the whole process that long after accepting a job (fault-injection for
/// the distributed layer: a real crash, not a simulated one).
pub const CHAOS_EXIT_ENV: &str = "SAGE_NET_CHAOS_EXIT_MS";

/// Runs one worker: binds `listen`, serves exactly one job, and returns.
///
/// `register` installs the kernel library into each job's registry (the
/// binary passes the ISSPL shelf; tests can pass their own).
pub fn serve(listen: &str, register: &dyn Fn(&mut Registry)) -> Result<(), NetError> {
    let listener = TcpListener::bind(listen)
        .map_err(|e| NetError::Io(format!("cannot bind {listen}: {e}")))?;
    let addr = listener.local_addr()?;
    println!("sage-worker listening on {addr}");
    std::io::stdout().flush()?;

    let (control, _) = listener.accept()?;
    control.set_nodelay(true)?;
    let job = Frame::read_from(&mut &control)?;
    if job.kind != FrameKind::Job {
        return Err(NetError::Protocol(format!(
            "expected job frame, got {:?}",
            job.kind
        )));
    }
    let spec = match JobSpec::decode(&job.payload) {
        Ok(spec) => spec,
        Err(e @ NetError::VersionMismatch { ours, theirs }) => {
            // Tell the launcher *why* before bailing: it sees a typed
            // rejection instead of a dropped connection.
            let reason = RejectReason::VersionMismatch { ours, theirs };
            let _ = Frame {
                kind: FrameKind::Reject,
                tag: 0,
                src: job.dst,
                dst: u32::MAX,
                job: 0,
                seq: 1,
                payload: reason.encode(),
            }
            .write_to(&mut &control);
            return Err(e);
        }
        Err(e) => return Err(e),
    };

    if let Some(ms) = std::env::var(CHAOS_EXIT_ENV)
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
    {
        std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(ms));
            eprintln!("sage-worker: chaos exit after {ms} ms");
            std::process::exit(101);
        });
    }

    let report = run_job(&spec, &listener, register);
    Frame {
        kind: FrameKind::Result,
        tag: 0,
        src: spec.rank,
        dst: u32::MAX,
        job: 0,
        seq: 1,
        payload: report.encode(),
    }
    .write_to(&mut &control)?;
    Frame::control(FrameKind::Goodbye, spec.rank, u32::MAX, 2).write_to(&mut &control)?;
    Ok(())
}

/// Failure report scaffold: everything zeroed except the error.
pub fn failed_report(rank: u32, error: RuntimeError) -> RankReport {
    failed(rank, error)
}

/// Regenerates and prepares one job's program from its model text: parse,
/// place, generate, rank-count check, kernel binding. Shared by the
/// one-shot worker and the fleet daemon — both must derive identical
/// tables from the same model text.
pub fn prepare_job(
    model_text: &str,
    ranks: usize,
    register: &dyn Fn(&mut Registry),
) -> Result<(sage_runtime::GlueProgram, sage_runtime::Prepared), RuntimeError> {
    let model = model_from_sexpr(model_text)
        .map_err(|e| RuntimeError::BadProgram(format!("model: {e}")))?;
    let mut project = Project::new(model, HardwareShelf::cspi_with_nodes(ranks));
    register(&mut project.registry);
    let (program, _) = project
        .generate(&Placement::Aligned)
        .map_err(|e| RuntimeError::BadProgram(format!("codegen: {e}")))?;
    if program.node_count() != ranks {
        return Err(RuntimeError::BadProgram(format!(
            "program wants {} nodes, job has {} ranks",
            program.node_count(),
            ranks
        )));
    }
    let prepared = prepare(&program, &project.registry)?;
    Ok((program, prepared))
}

/// Failure report scaffold: everything zeroed except the error.
fn failed(rank: u32, error: RuntimeError) -> RankReport {
    RankReport {
        rank,
        error: Some(error),
        deposits: Vec::new(),
        wall_secs: 0.0,
        metrics: NodeMetrics::default(),
        links: Vec::new(),
        events: Vec::new(),
    }
}

/// Executes this rank of the job; all failures come back in-band.
fn run_job(spec: &JobSpec, listener: &TcpListener, register: &dyn Fn(&mut Registry)) -> RankReport {
    let rank = spec.rank;
    let (program, prepared) = match prepare_job(&spec.model, spec.ranks as usize, register) {
        Ok(p) => p,
        Err(e) => return failed(rank, e),
    };
    let options = if spec.optimized {
        sage_runtime::RuntimeOptions::optimized()
    } else {
        sage_runtime::RuntimeOptions::paper_faithful()
    }
    .with_probes(spec.probes)
    .with_copy_baseline(spec.copy_baseline)
    .with_race_detect(spec.race_detect)
    .with_pipeline(spec.pipeline.unwrap_or(0))
    .with_pipeline_depths(spec.pipeline_depths.clone());

    let collector = Arc::new(Collector::new(spec.ranks as usize, spec.probes));
    let probe = Probe::new(collector.clone(), rank);
    let mut transport = match TcpTransport::connect(
        rank as usize,
        &spec.peers,
        listener,
        NetConfig::default().with_heartbeat_ms(spec.heartbeat_ms),
        probe.clone(),
    ) {
        Ok(t) => t,
        // A peer that never came up is indistinguishable from a dead one.
        Err(_) => return failed(rank, RuntimeError::NodeFailed { node: rank }),
    };

    let t0 = Instant::now();
    // Degraded per-process detector: it only sees this rank's serial
    // accesses, so it is trivially clean — cross-rank race validation runs
    // on the in-process backend.
    let race = options
        .race_detect
        .then(|| sage_runtime::RaceState::new(spec.ranks as usize));
    let outcome = execute_rank(
        &mut transport,
        &program,
        &prepared,
        &options,
        spec.iterations,
        &probe,
        race.as_ref(),
    );
    let wall_secs = t0.elapsed().as_secs_f64();

    let (error, deposits, metrics, links) = match outcome {
        Ok(outcome) => {
            let (metrics, links) = transport.finish();
            // Deposits leave the shared-payload world here: the report
            // codec ships plain bytes. `into_vec` is free when the run-time
            // handed over the sole reference.
            let deposits = outcome
                .deposits
                .into_iter()
                .map(|(key, payload)| (key, payload.into_vec()))
                .collect();
            (None, deposits, metrics, links)
        }
        Err(e) => {
            // Error path: drop the mesh (peers see EOF and fail over) and
            // report the typed cause.
            drop(transport);
            (Some(e), Vec::new(), NodeMetrics::default(), Vec::new())
        }
    };
    drop(probe);
    let events = Arc::into_inner(collector)
        .map(|c| c.into_trace().events().to_vec())
        .unwrap_or_default();
    RankReport {
        rank,
        error,
        deposits,
        wall_secs,
        metrics,
        links,
        events,
    }
}

/// Reads the `sage-worker listening on <addr>` banner off a worker's
/// stdout line.
pub fn parse_banner(line: &str) -> Option<&str> {
    line.trim().strip_prefix("sage-worker listening on ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn banner_round_trip() {
        assert_eq!(
            parse_banner("sage-worker listening on 127.0.0.1:4099\n"),
            Some("127.0.0.1:4099")
        );
        assert_eq!(parse_banner("something else"), None);
    }
}
