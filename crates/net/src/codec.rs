//! Primitive byte-codec helpers shared by every control-plane payload.
//!
//! Serialization across the workspace is a tiny hand-rolled tag-free
//! format (the workspace is offline, so no serde): integers big-endian,
//! strings and byte blobs length-prefixed, options as a presence byte.
//! `sage-net`'s job/report payloads and `sage-fleet`'s control messages
//! both build on these two structs, so the framing rules live in exactly
//! one place.

use crate::error::NetError;

/// Append-only payload builder.
pub struct Writer(pub Vec<u8>);

impl Writer {
    /// An empty writer.
    pub fn new() -> Writer {
        Writer(Vec::new())
    }
    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    /// Appends a big-endian u32.
    pub fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_be_bytes());
    }
    /// Appends a big-endian u64.
    pub fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_be_bytes());
    }
    /// Appends a big-endian f64.
    pub fn f64(&mut self, v: f64) {
        self.0.extend_from_slice(&v.to_be_bytes());
    }
    /// Appends a length-prefixed byte blob.
    pub fn bytes(&mut self, v: &[u8]) {
        self.u32(v.len() as u32);
        self.0.extend_from_slice(v);
    }
    /// Appends a length-prefixed UTF-8 string.
    pub fn string(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }
    /// Appends an option as a presence byte followed by the value.
    pub fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            None => self.u8(0),
            Some(x) => {
                self.u8(1);
                self.u64(x);
            }
        }
    }
}

impl Default for Writer {
    fn default() -> Writer {
        Writer::new()
    }
}

/// Bounds-checked payload cursor; every read is a typed `NetError` on
/// truncation, never a panic.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over `buf` positioned at the start.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }
    /// Takes the next `n` bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], NetError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| NetError::Protocol("payload truncated".into()))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }
    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, NetError> {
        Ok(self.take(1)?[0])
    }
    /// Reads a big-endian u32.
    pub fn u32(&mut self) -> Result<u32, NetError> {
        let b = self.take(4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }
    /// Reads a big-endian u64.
    pub fn u64(&mut self) -> Result<u64, NetError> {
        Ok(u64::from_be_bytes(self.take8()?))
    }
    /// Reads a big-endian f64.
    pub fn f64(&mut self) -> Result<f64, NetError> {
        Ok(f64::from_be_bytes(self.take8()?))
    }
    /// Reads exactly 8 bytes into an array (`take` already length-checks).
    fn take8(&mut self) -> Result<[u8; 8], NetError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(a)
    }
    /// Reads a length-prefixed byte blob.
    pub fn bytes(&mut self) -> Result<Vec<u8>, NetError> {
        let n = self.u32()? as usize;
        Ok(self.take(n)?.to_vec())
    }
    /// Reads a length-prefixed UTF-8 string.
    pub fn string(&mut self) -> Result<String, NetError> {
        String::from_utf8(self.bytes()?)
            .map_err(|_| NetError::Protocol("non-utf8 string field".into()))
    }
    /// Reads an option written by [`Writer::opt_u64`].
    pub fn opt_u64(&mut self) -> Result<Option<u64>, NetError> {
        Ok(match self.u8()? {
            0 => None,
            _ => Some(self.u64()?),
        })
    }
    /// Asserts the payload was consumed exactly.
    pub fn done(&self) -> Result<(), NetError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(NetError::Protocol("trailing bytes after payload".into()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = Writer::new();
        w.u8(7);
        w.u32(0xdead_beef);
        w.u64(u64::MAX);
        w.f64(0.5);
        w.bytes(&[1, 2, 3]);
        w.string("héllo");
        w.opt_u64(None);
        w.opt_u64(Some(42));
        let mut r = Reader::new(&w.0);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xdead_beef);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.f64().unwrap(), 0.5);
        assert_eq!(r.bytes().unwrap(), vec![1, 2, 3]);
        assert_eq!(r.string().unwrap(), "héllo");
        assert_eq!(r.opt_u64().unwrap(), None);
        assert_eq!(r.opt_u64().unwrap(), Some(42));
        r.done().unwrap();
    }

    #[test]
    fn truncation_and_trailing_are_typed() {
        let mut w = Writer::new();
        w.u32(1);
        let mut r = Reader::new(&w.0[..2]);
        assert!(matches!(r.u32().unwrap_err(), NetError::Protocol(_)));
        let mut r = Reader::new(&w.0);
        r.u8().unwrap();
        assert!(matches!(r.done().unwrap_err(), NetError::Protocol(_)));
    }

    #[test]
    fn huge_length_prefix_is_typed_not_oom() {
        let mut w = Writer::new();
        w.u32(u32::MAX);
        let mut r = Reader::new(&w.0);
        assert!(matches!(r.bytes().unwrap_err(), NetError::Protocol(_)));
    }
}
