//! # sage-net
//!
//! Real multi-process distribution for the SAGE run-time kernel: each rank
//! of a generated glue program runs in its own OS process, communicating
//! over TCP instead of in-process channels.
//!
//! The paper's run-time executed across physically distributed CSPI nodes
//! on a Myrinet fabric; the in-process cluster (`sage-fabric`) reproduces
//! the *semantics* of that on one host. This crate reproduces the
//! *distribution*: the same executor (`sage_runtime::execute_rank`), the
//! same MPI layer, the same generated schedules — over real sockets, via
//! the [`sage_fabric::Transport`] seam.
//!
//! * [`wire`] — the framed wire protocol: 44-byte header (magic, version,
//!   kind, tag, src/dst rank, **job namespace**, sequence number, length)
//!   plus an FNV-1a-32 whole-frame checksum; every decode failure is a
//!   typed [`WireError`].
//! * [`codec`] — the primitive byte codec every control-plane payload is
//!   built from (shared with `sage-fleet`).
//! * [`transport`] — the mesh: [`MeshCore`] (full-mesh establishment with
//!   retry/backoff, a **single nonblocking poll-loop I/O thread** per
//!   endpoint feeding a `(job, src, tag)` mailbox, heartbeat liveness — a
//!   silent peer is declared dead after `max_retries + 2` missed beats),
//!   [`JobTransport`] (a per-job rank-namespace view over a shared warm
//!   core, for the fleet), and [`TcpTransport`] (the classic one-job
//!   wrapper), all feeding [`sage_fabric::LinkMetrics`].
//! * [`proto`] — the control plane: [`JobSpec`] (launcher → worker) and
//!   [`RankReport`] (worker → launcher), carrying an explicit protocol
//!   version checked first in the handshake.
//! * [`worker`] — the `sage worker` daemon body: host one rank, report
//!   in-band.
//! * [`launch`] — the `sage launch` body: spawn workers, ship the job,
//!   merge deposits/metrics/traces, surface the root-cause error.
//!
//! Parity bar: a model executed over TCP produces sink output bit-identical
//! to the in-process backend — kernels compute the same bytes either way;
//! only the wire underneath changes.

#![warn(missing_docs)]

pub mod codec;
pub mod error;
pub mod launch;
pub mod proto;
pub mod transport;
pub mod wire;
pub mod worker;

pub use error::{NetError, RejectReason};
pub use launch::{launch, merge_outcomes, LaunchOptions, LaunchOutcome, Spawner};
pub use proto::{JobSpec, RankReport, PROTO_VERSION};
pub use transport::{JobTransport, MeshCore, NetConfig, TcpTransport};
pub use wire::{Frame, FrameKind, WireError};
pub use worker::{failed_report, parse_banner, prepare_job, serve, CHAOS_EXIT_ENV};
