//! # sage-net
//!
//! Real multi-process distribution for the SAGE run-time kernel: each rank
//! of a generated glue program runs in its own OS process, communicating
//! over TCP instead of in-process channels.
//!
//! The paper's run-time executed across physically distributed CSPI nodes
//! on a Myrinet fabric; the in-process cluster (`sage-fabric`) reproduces
//! the *semantics* of that on one host. This crate reproduces the
//! *distribution*: the same executor (`sage_runtime::execute_rank`), the
//! same MPI layer, the same generated schedules — over real sockets, via
//! the [`sage_fabric::Transport`] seam.
//!
//! * [`wire`] — the framed wire protocol: 40-byte header (magic, version,
//!   kind, tag, src/dst rank, sequence number, length) plus an FNV-1a-32
//!   whole-frame checksum; every decode failure is a typed [`WireError`].
//! * [`transport`] — [`TcpTransport`]: full-mesh connection establishment
//!   with retry/backoff, per-peer reader threads feeding a tagged mailbox,
//!   heartbeat liveness (a silent peer is declared dead after
//!   `max_retries + 2` missed beats), and per-link byte/message counters
//!   feeding [`sage_fabric::LinkMetrics`].
//! * [`proto`] — the control plane: [`JobSpec`] (launcher → worker) and
//!   [`RankReport`] (worker → launcher).
//! * [`worker`] — the `sage worker` daemon body: host one rank, report
//!   in-band.
//! * [`launch`] — the `sage launch` body: spawn workers, ship the job,
//!   merge deposits/metrics/traces, surface the root-cause error.
//!
//! Parity bar: a model executed over TCP produces sink output bit-identical
//! to the in-process backend — kernels compute the same bytes either way;
//! only the wire underneath changes.

#![warn(missing_docs)]

pub mod error;
pub mod launch;
pub mod proto;
pub mod transport;
pub mod wire;
pub mod worker;

pub use error::NetError;
pub use launch::{launch, LaunchOptions, LaunchOutcome, Spawner};
pub use proto::{JobSpec, RankReport};
pub use transport::{NetConfig, TcpTransport};
pub use wire::{Frame, FrameKind, WireError};
pub use worker::{serve, CHAOS_EXIT_ENV};
