//! The TCP backend: one OS process per rank, a full mesh of framed
//! connections, background reader threads feeding a tagged mailbox, and
//! heartbeat-based liveness.
//!
//! Semantics mirror the in-process cluster so the executor cannot tell the
//! backends apart: per-`(src, tag)` FIFO ordering (TCP ordering + one
//! reader thread per peer), `PeerFailed` when a peer is gone and its queue
//! is drained, `RecvTimeout` when a receive outlives the configured
//! deadline.

use crate::error::NetError;
use crate::wire::{write_parts, Frame, FrameKind};
use sage_fabric::{FabricError, LinkMetrics, NodeMetrics, Payload, Transport};
use sage_mpi::RetryPolicy;
use sage_visualizer::Probe;
use std::collections::{HashMap, VecDeque};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Tuning knobs for the TCP backend.
#[derive(Clone, Debug)]
pub struct NetConfig {
    /// Retry policy for mesh-establishment connects (worker processes come
    /// up in arbitrary order) — and the heartbeat-miss allowance: a silent
    /// peer is declared dead after `max_retries + 2` missed beats.
    pub retry: RetryPolicy,
    /// Heartbeat transmission interval.
    pub heartbeat: Duration,
    /// Deadline for one blocking receive.
    pub recv_timeout: Duration,
    /// Deadline for the whole mesh establishment.
    pub mesh_timeout: Duration,
}

impl Default for NetConfig {
    fn default() -> NetConfig {
        NetConfig {
            retry: RetryPolicy {
                max_retries: 10,
                backoff_secs: 0.025,
                backoff_factor: 1.5,
            },
            heartbeat: Duration::from_millis(200),
            recv_timeout: Duration::from_secs(30),
            mesh_timeout: Duration::from_secs(20),
        }
    }
}

impl NetConfig {
    /// How long a peer may stay silent before it is declared dead.
    fn stale_after(&self) -> Duration {
        self.heartbeat * (self.retry.max_retries + 2)
    }
}

/// Liveness state of one peer.
struct PeerState {
    /// Peer sent `Goodbye`: it will transmit nothing further, but already
    /// queued messages remain receivable.
    done: bool,
    /// Connection dropped without `Goodbye`, protocol violation, or
    /// heartbeat silence: the peer is presumed crashed.
    dead: bool,
    last_seen: Instant,
}

/// Shared between the transport, its reader threads, and the heartbeater.
struct MailboxInner {
    queues: HashMap<(u32, u64), VecDeque<Payload>>,
    peers: Vec<PeerState>,
    recv_messages: u64,
    recv_bytes: u64,
}

struct Mailbox {
    inner: Mutex<MailboxInner>,
    cv: Condvar,
    /// Set when any thread panicked while holding the mailbox lock. The
    /// transport keeps functioning (metrics, shutdown, draining) but
    /// reports this rank as failed instead of cascading the panic into
    /// every reader, heartbeater, and caller thread.
    poisoned: AtomicBool,
}

impl Mailbox {
    /// Locks the mailbox, recovering from poison instead of panicking.
    fn lock(&self) -> MutexGuard<'_, MailboxInner> {
        self.inner.lock().unwrap_or_else(|e| {
            self.poisoned.store(true, Ordering::SeqCst);
            e.into_inner()
        })
    }

    fn mark_dead(&self, peer: usize) {
        let mut m = self.lock();
        m.peers[peer].dead = true;
        drop(m);
        self.cv.notify_all();
    }
}

/// The write half of one established link.
struct PeerLink {
    writer: Mutex<TcpStream>,
    seq: AtomicU64,
    sent_messages: AtomicU64,
    sent_bytes: AtomicU64,
}

impl PeerLink {
    /// Frames and transmits straight from the caller's slice (vectored
    /// header+payload write, no per-frame assembly buffer or payload
    /// copy); returns `false` if the stream is broken or its writer lock
    /// is poisoned — the caller marks the peer dead either way.
    fn send(&self, kind: FrameKind, src: u32, dst: u32, tag: u64, payload: &[u8]) -> bool {
        let Ok(mut w) = self.writer.lock() else {
            // A thread panicked mid-write: the stream may hold a torn
            // frame, so the link cannot be trusted.
            return false;
        };
        // Sequence assignment under the write lock, so frames hit the wire
        // in seq order even when the heartbeater races a data send.
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        write_parts(&mut *w, kind, tag, src, dst, seq, payload).is_ok()
    }
}

/// The multi-process TCP [`Transport`] for one rank.
pub struct TcpTransport {
    rank: usize,
    size: usize,
    links: Vec<Option<Arc<PeerLink>>>,
    mailbox: Arc<Mailbox>,
    probe: Probe,
    start: Instant,
    config: NetConfig,
    stop: Arc<AtomicBool>,
    readers: Vec<std::thread::JoinHandle<()>>,
    heartbeater: Option<std::thread::JoinHandle<()>>,
    mem_high_water: u64,
}

impl TcpTransport {
    /// Establishes the full mesh for `rank` out of `peers` (one data-plane
    /// listen address per rank, indexed by rank).
    ///
    /// Rank `i` actively connects to every rank below it (retrying with
    /// backoff while those processes come up) and accepts one connection
    /// from every rank above it on `listener`; a `Hello` exchange binds
    /// each accepted socket to its rank.
    pub fn connect(
        rank: usize,
        peers: &[String],
        listener: &TcpListener,
        config: NetConfig,
        probe: Probe,
    ) -> Result<TcpTransport, NetError> {
        let size = peers.len();
        if rank >= size {
            return Err(NetError::Protocol(format!(
                "rank {rank} out of range for {size} peers"
            )));
        }
        let start = Instant::now();
        let mailbox = Arc::new(Mailbox {
            inner: Mutex::new(MailboxInner {
                queues: HashMap::new(),
                peers: (0..size)
                    .map(|_| PeerState {
                        done: false,
                        dead: false,
                        last_seen: start,
                    })
                    .collect(),
                recv_messages: 0,
                recv_bytes: 0,
            }),
            cv: Condvar::new(),
            poisoned: AtomicBool::new(false),
        });

        let mut streams: Vec<Option<TcpStream>> = (0..size).map(|_| None).collect();
        // Connect downward, with backoff: lower ranks may still be binding.
        for (j, addr) in peers.iter().enumerate().take(rank) {
            let stream = connect_with_retry(addr, &config.retry, &probe, start)
                .map_err(|e| NetError::Io(format!("connecting to rank {j} at {addr}: {e}")))?;
            stream.set_nodelay(true)?;
            Frame::control(FrameKind::Hello, rank as u32, j as u32, 0)
                .write_to(&mut &stream)
                .map_err(NetError::Wire)?;
            probe.net_connect(start.elapsed().as_secs_f64(), j as u32);
            streams[j] = Some(stream);
        }
        // Accept upward: higher ranks dial us; `Hello` tells us who called.
        let deadline = Instant::now() + config.mesh_timeout;
        listener.set_nonblocking(true)?;
        let mut pending = size - rank - 1;
        while pending > 0 {
            match listener.accept() {
                Ok((stream, _)) => {
                    stream.set_nonblocking(false)?;
                    stream.set_nodelay(true)?;
                    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
                    let hello = Frame::read_from(&mut &stream).map_err(NetError::Wire)?;
                    stream.set_read_timeout(None)?;
                    let j = hello.src as usize;
                    if hello.kind != FrameKind::Hello
                        || hello.dst as usize != rank
                        || j <= rank
                        || j >= size
                        || streams[j].is_some()
                    {
                        return Err(NetError::Protocol(format!(
                            "bad hello from rank {j} (kind {:?}, dst {})",
                            hello.kind, hello.dst
                        )));
                    }
                    probe.net_connect(start.elapsed().as_secs_f64(), j as u32);
                    streams[j] = Some(stream);
                    pending -= 1;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if Instant::now() > deadline {
                        return Err(NetError::Io(format!(
                            "mesh establishment timed out with {pending} peer(s) missing"
                        )));
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => return Err(e.into()),
            }
        }
        listener.set_nonblocking(false)?;

        // Spin up one reader per link and the heartbeat loop.
        let mut links: Vec<Option<Arc<PeerLink>>> = (0..size).map(|_| None).collect();
        let mut readers = Vec::new();
        for (j, stream) in streams.into_iter().enumerate() {
            let Some(stream) = stream else { continue };
            let read_half = stream.try_clone()?;
            links[j] = Some(Arc::new(PeerLink {
                writer: Mutex::new(stream),
                seq: AtomicU64::new(1),
                sent_messages: AtomicU64::new(0),
                sent_bytes: AtomicU64::new(0),
            }));
            let mb = mailbox.clone();
            let pr = probe.clone();
            readers.push(std::thread::spawn(move || {
                read_loop(read_half, j, mb, pr, start);
            }));
        }
        let stop = Arc::new(AtomicBool::new(false));
        let heartbeater = {
            let links: Vec<(usize, Arc<PeerLink>)> = links
                .iter()
                .enumerate()
                .filter_map(|(j, l)| l.as_ref().map(|l| (j, l.clone())))
                .collect();
            let stop = stop.clone();
            let mb = mailbox.clone();
            let interval = config.heartbeat;
            let rank = rank as u32;
            Some(std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    std::thread::sleep(interval);
                    for (j, link) in &links {
                        if !link.send(FrameKind::Heartbeat, rank, *j as u32, 0, &[]) {
                            mb.mark_dead(*j);
                        }
                    }
                }
            }))
        };
        Ok(TcpTransport {
            rank,
            size,
            links,
            mailbox,
            probe,
            start,
            config,
            stop,
            readers,
            heartbeater,
            mem_high_water: 0,
        })
    }

    /// Clean shutdown: tell every peer we are done and return this rank's
    /// traffic counters.
    ///
    /// Reader threads are detached, not joined — they run until the peer's
    /// own goodbye or EOF, which may be long after this rank finishes
    /// (ranks complete their schedules at different times; joining here
    /// would deadlock two ranks that finish back-to-back). Already-written
    /// frames stay deliverable to peers through normal TCP buffering.
    pub fn finish(mut self) -> (NodeMetrics, Vec<LinkMetrics>) {
        for (j, link) in self.links.iter().enumerate() {
            if let Some(link) = link {
                link.send(FrameKind::Goodbye, self.rank as u32, j as u32, 0, &[]);
            }
        }
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.heartbeater.take() {
            let _ = h.join();
        }
        self.readers.clear();
        let links: Vec<LinkMetrics> = self
            .links
            .iter()
            .enumerate()
            .filter_map(|(j, l)| {
                l.as_ref().map(|l| LinkMetrics {
                    src: self.rank as u32,
                    dst: j as u32,
                    messages: l.sent_messages.load(Ordering::Relaxed),
                    bytes: l.sent_bytes.load(Ordering::Relaxed),
                })
            })
            .collect();
        let m = self.mailbox.lock();
        let metrics = NodeMetrics {
            messages_sent: links.iter().map(|l| l.messages).sum(),
            bytes_sent: links.iter().map(|l| l.bytes).sum(),
            messages_received: m.recv_messages,
            bytes_received: m.recv_bytes,
            mem_high_water: self.mem_high_water,
            ..NodeMetrics::default()
        };
        drop(m);
        (metrics, links)
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        // Error-path drop: stop heartbeating and detach readers (they end
        // on peer EOF; the process is about to exit anyway). `finish`
        // drains both vectors, so this is a no-op after a clean shutdown.
        self.stop.store(true, Ordering::Relaxed);
    }
}

impl Transport for TcpTransport {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.size
    }

    fn try_send(&mut self, dst: usize, tag: u64, payload: &Payload) -> Result<(), FabricError> {
        if self.mailbox.poisoned.load(Ordering::SeqCst) {
            // A thread died holding the mailbox: local state is suspect.
            return Err(FabricError::NodeFailed {
                node: self.rank as u32,
            });
        }
        if dst == self.rank {
            let mut m = self.mailbox.lock();
            m.queues
                .entry((dst as u32, tag))
                .or_default()
                .push_back(payload.clone());
            drop(m);
            self.mailbox.cv.notify_all();
            return Ok(());
        }
        let Some(link) = self.links[dst].as_ref() else {
            // No link was ever established to this peer (mesh came up
            // without it): sending can never succeed, so surface the same
            // typed error a crashed peer would — callers already handle it.
            return Err(FabricError::PeerFailed {
                node: self.rank as u32,
                peer: dst as u32,
            });
        };
        {
            let m = self.mailbox.lock();
            if m.peers[dst].dead {
                return Err(FabricError::PeerFailed {
                    node: self.rank as u32,
                    peer: dst as u32,
                });
            }
        }
        if !link.send(FrameKind::Data, self.rank as u32, dst as u32, tag, payload) {
            self.mailbox.mark_dead(dst);
            return Err(FabricError::PeerFailed {
                node: self.rank as u32,
                peer: dst as u32,
            });
        }
        link.sent_messages.fetch_add(1, Ordering::Relaxed);
        link.sent_bytes
            .fetch_add(payload.len() as u64, Ordering::Relaxed);
        self.probe
            .net_send(self.start.elapsed().as_secs_f64(), dst as u32, 0);
        Ok(())
    }

    fn note_mem_use(&mut self, bytes: u64) {
        self.mem_high_water = self.mem_high_water.max(bytes);
    }

    fn try_recv(&mut self, src: usize, tag: u64) -> Result<Payload, FabricError> {
        let key = (src as u32, tag);
        let deadline = Instant::now() + self.config.recv_timeout;
        let stale_after = self.config.stale_after();
        if self.mailbox.poisoned.load(Ordering::SeqCst) {
            return Err(FabricError::NodeFailed {
                node: self.rank as u32,
            });
        }
        let mut m = self.mailbox.lock();
        loop {
            if let Some(q) = m.queues.get_mut(&key) {
                if let Some(payload) = q.pop_front() {
                    return Ok(payload);
                }
            }
            if src != self.rank {
                let p = &m.peers[src];
                if p.dead || p.done {
                    // Mirrors the local cluster: a finished peer with an
                    // empty queue can never satisfy this receive.
                    return Err(FabricError::PeerFailed {
                        node: self.rank as u32,
                        peer: src as u32,
                    });
                }
                if p.last_seen.elapsed() > stale_after {
                    m.peers[src].dead = true;
                    self.probe
                        .net_timeout(self.start.elapsed().as_secs_f64(), src as u32);
                    return Err(FabricError::PeerFailed {
                        node: self.rank as u32,
                        peer: src as u32,
                    });
                }
            }
            let now = Instant::now();
            if now >= deadline {
                self.probe
                    .net_timeout(self.start.elapsed().as_secs_f64(), src as u32);
                return Err(FabricError::RecvTimeout {
                    node: self.rank as u32,
                    src: src as u32,
                    tag,
                });
            }
            // Wake at least every heartbeat to re-check staleness.
            let wait = (deadline - now).min(self.config.heartbeat);
            match self.mailbox.cv.wait_timeout(m, wait) {
                Ok((guard, _)) => m = guard,
                Err(_) => {
                    // A waiter or producer panicked with the lock held.
                    self.mailbox.poisoned.store(true, Ordering::SeqCst);
                    return Err(FabricError::NodeFailed {
                        node: self.rank as u32,
                    });
                }
            }
        }
    }
}

/// Dials `addr`, retrying with exponential backoff while the peer process
/// comes up.
fn connect_with_retry(
    addr: &str,
    retry: &RetryPolicy,
    probe: &Probe,
    start: Instant,
) -> std::io::Result<TcpStream> {
    let mut backoff = retry.backoff_secs;
    let mut last_err = None;
    for attempt in 0..=retry.max_retries {
        if attempt > 0 {
            probe.net_retry(start.elapsed().as_secs_f64(), 0);
            std::thread::sleep(Duration::from_secs_f64(backoff));
            backoff *= retry.backoff_factor;
        }
        match TcpStream::connect(addr) {
            Ok(s) => return Ok(s),
            Err(e) => last_err = Some(e),
        }
    }
    Err(last_err.expect("at least one attempt"))
}

/// One peer's reader: drains frames into the mailbox until goodbye, EOF,
/// or a protocol violation.
fn read_loop(stream: TcpStream, peer: usize, mailbox: Arc<Mailbox>, probe: Probe, start: Instant) {
    let mut stream = stream;
    let mut last_seq: Option<u64> = None;
    loop {
        match Frame::read_from(&mut stream) {
            Ok(frame) => {
                if frame.src as usize != peer || last_seq.is_some_and(|s| frame.seq <= s) {
                    // Misattributed or replayed frame: distrust the link.
                    mailbox.mark_dead(peer);
                    return;
                }
                last_seq = Some(frame.seq);
                match frame.kind {
                    FrameKind::Data => {
                        // The freshly read Vec moves straight into the
                        // mailbox as a `Payload` — receivers take the same
                        // allocation the socket read filled.
                        let payload = Payload::from_vec(frame.payload);
                        let mut m = mailbox.lock();
                        m.recv_messages += 1;
                        m.recv_bytes += payload.len() as u64;
                        m.peers[peer].last_seen = Instant::now();
                        m.queues
                            .entry((frame.src, frame.tag))
                            .or_default()
                            .push_back(payload);
                        drop(m);
                        probe.net_recv(start.elapsed().as_secs_f64(), peer as u32, 0);
                        mailbox.cv.notify_all();
                    }
                    FrameKind::Heartbeat => {
                        let mut m = mailbox.lock();
                        m.peers[peer].last_seen = Instant::now();
                        drop(m);
                        mailbox.cv.notify_all();
                    }
                    FrameKind::Goodbye => {
                        let mut m = mailbox.lock();
                        m.peers[peer].done = true;
                        drop(m);
                        mailbox.cv.notify_all();
                        return;
                    }
                    _ => {
                        mailbox.mark_dead(peer);
                        return;
                    }
                }
            }
            Err(_) => {
                // EOF without goodbye, or garbage on the wire: the peer
                // crashed (or the link is corrupt — same remedy).
                mailbox.mark_dead(peer);
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds an N-rank loopback mesh, one transport per thread.
    fn mesh(n: usize) -> Vec<TcpTransport> {
        let listeners: Vec<TcpListener> = (0..n)
            .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind"))
            .collect();
        let peers: Vec<String> = listeners
            .iter()
            .map(|l| l.local_addr().expect("addr").to_string())
            .collect();
        let handles: Vec<_> = listeners
            .into_iter()
            .enumerate()
            .map(|(rank, listener)| {
                let peers = peers.clone();
                std::thread::spawn(move || {
                    TcpTransport::connect(
                        rank,
                        &peers,
                        &listener,
                        NetConfig::default(),
                        Probe::disabled(),
                    )
                    .expect("mesh")
                })
            })
            .collect();
        let mut out: Vec<_> = handles
            .into_iter()
            .map(|h| h.join().expect("join"))
            .collect();
        out.sort_by_key(|t| t.rank());
        out
    }

    #[test]
    fn two_rank_ping_pong_over_loopback() {
        let mut ts = mesh(2);
        let mut t1 = ts.pop().expect("rank 1");
        let mut t0 = ts.pop().expect("rank 0");
        let h = std::thread::spawn(move || {
            let m = t1.try_recv(0, 7).expect("recv ping");
            t1.try_send(0, 8, &m).expect("send pong");
            t1.finish()
        });
        t0.try_send(1, 7, &Payload::from(b"ping"))
            .expect("send ping");
        assert_eq!(t0.try_recv(1, 8).expect("recv pong"), b"ping");
        let (m0, l0) = t0.finish();
        let (m1, _) = h.join().expect("join");
        assert_eq!(m0.messages_sent, 1);
        assert_eq!(m0.bytes_sent, 4);
        assert_eq!(m1.messages_received, 1);
        assert_eq!(
            l0,
            vec![LinkMetrics {
                src: 0,
                dst: 1,
                messages: 1,
                bytes: 4,
            }]
        );
    }

    #[test]
    fn four_rank_all_to_all_fifo() {
        let ts = mesh(4);
        let handles: Vec<_> = ts
            .into_iter()
            .map(|mut t| {
                std::thread::spawn(move || {
                    let me = t.rank();
                    for dst in 0..t.size() {
                        for k in 0..3u8 {
                            t.try_send(dst, 5, &Payload::from_vec(vec![me as u8, k]))
                                .expect("send");
                        }
                    }
                    for src in 0..t.size() {
                        for k in 0..3u8 {
                            let m = t.try_recv(src, 5).expect("recv");
                            assert_eq!(m, vec![src as u8, k], "fifo order per (src, tag)");
                        }
                    }
                    t.finish();
                })
            })
            .collect();
        for h in handles {
            h.join().expect("join");
        }
    }

    #[test]
    fn dead_peer_surfaces_peer_failed_not_hang() {
        let mut ts = mesh(2);
        let t1 = ts.pop().expect("rank 1");
        let mut t0 = ts.pop().expect("rank 0");
        drop(t1); // rank 1 "crashes": connections drop without goodbye
        let err = t0.try_recv(1, 3).expect_err("peer is gone");
        assert_eq!(err, FabricError::PeerFailed { node: 0, peer: 1 });
    }

    #[test]
    fn finished_peer_with_drained_queue_is_peer_failed() {
        let mut ts = mesh(2);
        let mut t1 = ts.pop().expect("rank 1");
        let mut t0 = ts.pop().expect("rank 0");
        t1.try_send(0, 9, &Payload::from(b"last")).expect("send");
        t1.finish();
        // The queued message is still deliverable after the goodbye...
        assert_eq!(t0.try_recv(1, 9).expect("queued"), b"last");
        // ...but the next receive can never complete.
        let err = t0.try_recv(1, 9).expect_err("peer done");
        assert_eq!(err, FabricError::PeerFailed { node: 0, peer: 1 });
    }

    #[test]
    fn self_send_delivers_locally() {
        let mut ts = mesh(1);
        let mut t = ts.pop().expect("rank 0");
        t.try_send(0, 2, &Payload::from(b"loop")).expect("send");
        assert_eq!(t.try_recv(0, 2).expect("recv"), b"loop");
        let (m, links) = t.finish();
        assert_eq!(m.messages_sent, 0, "self-sends never hit the wire");
        assert!(links.is_empty());
    }
}
