//! The TCP backend: one OS process per mesh endpoint, a full mesh of
//! framed connections, and a **single nonblocking I/O thread** per
//! endpoint multiplexing every peer socket — so an endpoint scales to
//! hundreds of peers (and, through per-job rank namespaces, hundreds of
//! concurrent jobs) with O(1) threads instead of a reader thread per link.
//!
//! Layering:
//!
//! * [`MeshCore`] — the warm mesh itself: connection establishment with
//!   retry/backoff, the poll-loop I/O thread feeding a `(job, src, tag)`
//!   mailbox, heartbeat liveness, and job retirement. One core is shared
//!   (via `Arc`) by every job executing on the endpoint.
//! * [`JobTransport`] — a per-job [`Transport`] view over a shared core:
//!   logical ranks are mapped to mesh peer indices through a rank map, so
//!   many concurrent jobs — each with its own dense rank namespace — ride
//!   one set of sockets.
//! * [`TcpTransport`] — the classic one-job-per-process transport, now a
//!   thin wrapper over a private core in job namespace 0 with an identity
//!   rank map. API and semantics are unchanged from the
//!   thread-per-link era.
//!
//! Semantics mirror the in-process cluster so the executor cannot tell the
//! backends apart: per-`(src, tag)` FIFO ordering (TCP ordering + one
//! poll loop), `PeerFailed` when a peer is gone and its queue is drained,
//! `RecvTimeout` when a receive outlives the configured deadline.

use crate::error::NetError;
use crate::wire::{try_write_control, write_parts, Frame, FrameKind, TryWrite, WireError};
use sage_fabric::{FabricError, LinkMetrics, NodeMetrics, Payload, Transport};
use sage_mpi::RetryPolicy;
use sage_visualizer::Probe;
use std::collections::{HashMap, HashSet, VecDeque};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Tuning knobs for the TCP backend.
#[derive(Clone, Debug)]
pub struct NetConfig {
    /// Retry policy for mesh-establishment connects (worker processes come
    /// up in arbitrary order) — and the heartbeat-miss allowance: a silent
    /// peer is declared dead after `max_retries + 2` missed beats.
    pub retry: RetryPolicy,
    /// Heartbeat transmission interval.
    pub heartbeat: Duration,
    /// Deadline for one blocking receive.
    pub recv_timeout: Duration,
    /// Deadline for the whole mesh establishment.
    pub mesh_timeout: Duration,
}

impl Default for NetConfig {
    fn default() -> NetConfig {
        NetConfig {
            retry: RetryPolicy {
                max_retries: 10,
                backoff_secs: 0.025,
                backoff_factor: 1.5,
            },
            heartbeat: Duration::from_millis(200),
            recv_timeout: Duration::from_secs(30),
            mesh_timeout: Duration::from_secs(20),
        }
    }
}

impl NetConfig {
    /// Overrides the heartbeat period (the `--heartbeat-ms` knob). `None`
    /// keeps the default. The staleness window stays derived as
    /// `heartbeat * (max_retries + 2)`, so tuning the beat tunes the
    /// window proportionally.
    pub fn with_heartbeat_ms(mut self, ms: Option<u64>) -> NetConfig {
        if let Some(ms) = ms {
            self.heartbeat = Duration::from_millis(ms.max(1));
        }
        self
    }

    /// How long a peer may stay silent before it is declared dead.
    fn stale_after(&self) -> Duration {
        self.heartbeat * (self.retry.max_retries + 2)
    }
}

/// Liveness state of one peer link.
struct PeerState {
    /// Peer sent `Goodbye`: it will transmit nothing further, but already
    /// queued messages remain receivable.
    done: bool,
    /// Connection dropped without `Goodbye`, protocol violation, or
    /// heartbeat silence: the peer is presumed crashed.
    dead: bool,
    last_seen: Instant,
}

/// How many retired job ids the mailbox remembers. Late frames for a
/// remembered id are dropped instead of accumulating in dead queues; ids
/// are scheduler-monotonic and never reused, so forgetting ancient ones
/// is harmless.
const RETIRED_MEMORY: usize = 1024;

/// Shared between the endpoint's caller threads and its I/O thread.
struct MailboxInner {
    /// Received payloads keyed `(job, logical src, tag)`.
    queues: HashMap<(u32, u32, u64), VecDeque<Payload>>,
    peers: Vec<PeerState>,
    /// `(job, logical src)` pairs whose sender declared the job finished.
    job_done: HashSet<(u32, u32)>,
    /// Jobs purged on this endpoint (see [`RETIRED_MEMORY`]).
    retired: HashSet<u32>,
    retired_order: VecDeque<u32>,
    recv_messages: u64,
    recv_bytes: u64,
}

struct Mailbox {
    inner: Mutex<MailboxInner>,
    cv: Condvar,
    /// Set when any thread panicked while holding the mailbox lock. The
    /// transport keeps functioning (metrics, shutdown, draining) but
    /// reports this endpoint as failed instead of cascading the panic
    /// into every caller thread.
    poisoned: AtomicBool,
}

impl Mailbox {
    /// Locks the mailbox, recovering from poison instead of panicking.
    fn lock(&self) -> MutexGuard<'_, MailboxInner> {
        self.inner.lock().unwrap_or_else(|e| {
            self.poisoned.store(true, Ordering::SeqCst);
            e.into_inner()
        })
    }

    fn mark_dead(&self, peer: usize) {
        let mut m = self.lock();
        m.peers[peer].dead = true;
        drop(m);
        self.cv.notify_all();
    }
}

/// The write half of one established link.
struct PeerLink {
    writer: Mutex<TcpStream>,
    seq: AtomicU64,
}

impl PeerLink {
    /// Frames and transmits straight from the caller's slice (vectored
    /// header+payload write, no per-frame assembly buffer or payload
    /// copy); returns `false` if the stream is broken or its writer lock
    /// is poisoned — the caller marks the peer dead either way.
    ///
    /// `src`/`dst` are *logical* ranks within `job` (for job 0 they equal
    /// mesh indices). Concurrent jobs sharing the link serialize on the
    /// writer lock; sequence assignment happens under it, so frames hit
    /// the wire in seq order even when the heartbeater races a data send.
    fn send(
        &self,
        kind: FrameKind,
        src: u32,
        dst: u32,
        job: u32,
        tag: u64,
        payload: &[u8],
    ) -> bool {
        let Ok(mut w) = self.writer.lock() else {
            // A thread panicked mid-write: the stream may hold a torn
            // frame, so the link cannot be trusted.
            return false;
        };
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        write_parts(&mut *w, kind, tag, src, dst, job, seq, payload).is_ok()
    }

    /// Nonblocking heartbeat from the transport's single I/O thread.
    ///
    /// Data senders hold the writer lock across `write_parts`, which
    /// sleep-retries while the kernel send buffer drains — potentially
    /// for a long time on a saturated link. Blocking here would freeze
    /// the whole I/O thread (reads *and* beats for every peer) behind
    /// that one link, which is exactly how healthy peers used to get
    /// declared stale under heavy data volume. Instead the beat is
    /// skipped when the writer is busy or the buffer is full: in both
    /// cases data frames are already in flight on this link, and any
    /// bytes arriving refresh the remote's `last_seen` just like a beat.
    /// Returns `false` only when the stream itself is broken.
    fn try_beat(&self, src: u32, dst: u32) -> bool {
        match self.writer.try_lock() {
            Ok(mut w) => {
                let seq = self.seq.fetch_add(1, Ordering::Relaxed);
                !matches!(
                    try_write_control(&mut *w, FrameKind::Heartbeat, src, dst, 0, seq),
                    TryWrite::Failed
                )
            }
            Err(std::sync::TryLockError::WouldBlock) => true,
            Err(std::sync::TryLockError::Poisoned(_)) => false,
        }
    }
}

/// Why a core-level send/recv could not complete. Wrappers map these onto
/// [`FabricError`] using their own *logical* rank numbering — the core
/// cannot name logical ranks, it only knows mesh indices.
enum CoreFail {
    /// The peer is dead, finished, or was never linked.
    PeerGone,
    /// The receive deadline passed with the peer still alive.
    Timeout,
    /// Local state is suspect (a thread panicked holding the mailbox).
    Poisoned,
}

/// One endpoint's warm mesh: sockets, the poll-loop I/O thread, and the
/// job-namespaced mailbox. Shared by every job executing on the endpoint.
pub struct MeshCore {
    rank: usize,
    size: usize,
    links: Vec<Option<Arc<PeerLink>>>,
    mailbox: Arc<Mailbox>,
    probe: Probe,
    start: Instant,
    config: NetConfig,
    stop: Arc<AtomicBool>,
    io: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl MeshCore {
    /// Establishes the full mesh for mesh index `rank` out of `peers` (one
    /// data-plane listen address per endpoint, indexed by mesh rank).
    ///
    /// Index `i` actively connects to every index below it (retrying with
    /// backoff while those processes come up) and accepts one connection
    /// from every index above it on `listener`; a `Hello` exchange binds
    /// each accepted socket to its index. All established sockets then go
    /// nonblocking and a single I/O thread multiplexes them.
    pub fn connect(
        rank: usize,
        peers: &[String],
        listener: &TcpListener,
        config: NetConfig,
        probe: Probe,
    ) -> Result<Arc<MeshCore>, NetError> {
        let size = peers.len();
        if rank >= size {
            return Err(NetError::Protocol(format!(
                "rank {rank} out of range for {size} peers"
            )));
        }
        let start = Instant::now();
        let mailbox = Arc::new(Mailbox {
            inner: Mutex::new(MailboxInner {
                queues: HashMap::new(),
                peers: (0..size)
                    .map(|_| PeerState {
                        done: false,
                        dead: false,
                        last_seen: start,
                    })
                    .collect(),
                job_done: HashSet::new(),
                retired: HashSet::new(),
                retired_order: VecDeque::new(),
                recv_messages: 0,
                recv_bytes: 0,
            }),
            cv: Condvar::new(),
            poisoned: AtomicBool::new(false),
        });

        let mut streams: Vec<Option<TcpStream>> = (0..size).map(|_| None).collect();
        // Connect downward, with backoff: lower indices may still be binding.
        for (j, addr) in peers.iter().enumerate().take(rank) {
            let stream = connect_with_retry(addr, &config.retry, &probe, start)
                .map_err(|e| NetError::Io(format!("connecting to rank {j} at {addr}: {e}")))?;
            stream.set_nodelay(true)?;
            Frame::control(FrameKind::Hello, rank as u32, j as u32, 0)
                .write_to(&mut &stream)
                .map_err(NetError::Wire)?;
            probe.net_connect(start.elapsed().as_secs_f64(), j as u32);
            streams[j] = Some(stream);
        }
        // Accept upward: higher indices dial us; `Hello` tells us who called.
        let deadline = Instant::now() + config.mesh_timeout;
        listener.set_nonblocking(true)?;
        let mut pending = size - rank - 1;
        while pending > 0 {
            match listener.accept() {
                Ok((stream, _)) => {
                    stream.set_nonblocking(false)?;
                    stream.set_nodelay(true)?;
                    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
                    let hello = Frame::read_from(&mut &stream).map_err(NetError::Wire)?;
                    stream.set_read_timeout(None)?;
                    let j = hello.src as usize;
                    if hello.kind != FrameKind::Hello
                        || hello.dst as usize != rank
                        || j <= rank
                        || j >= size
                        || streams[j].is_some()
                    {
                        return Err(NetError::Protocol(format!(
                            "bad hello from rank {j} (kind {:?}, dst {})",
                            hello.kind, hello.dst
                        )));
                    }
                    probe.net_connect(start.elapsed().as_secs_f64(), j as u32);
                    streams[j] = Some(stream);
                    pending -= 1;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if Instant::now() > deadline {
                        return Err(NetError::Io(format!(
                            "mesh establishment timed out with {pending} peer(s) missing"
                        )));
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => return Err(e.into()),
            }
        }
        listener.set_nonblocking(false)?;

        // Go nonblocking (the fd is shared by the read clone and the write
        // half; writers sleep-retry on WouldBlock inside `write_parts`)
        // and hand every socket to the one I/O thread.
        let mut links: Vec<Option<Arc<PeerLink>>> = (0..size).map(|_| None).collect();
        let mut reads = Vec::new();
        for (j, stream) in streams.into_iter().enumerate() {
            let Some(stream) = stream else { continue };
            stream.set_nonblocking(true)?;
            let read_half = stream.try_clone()?;
            links[j] = Some(Arc::new(PeerLink {
                writer: Mutex::new(stream),
                seq: AtomicU64::new(1),
            }));
            reads.push(PeerRead {
                peer: j,
                stream: read_half,
                buf: Vec::new(),
                last_seq: None,
                open: true,
            });
        }
        let stop = Arc::new(AtomicBool::new(false));
        let io = {
            let beat_links: Vec<(usize, Arc<PeerLink>)> = links
                .iter()
                .enumerate()
                .filter_map(|(j, l)| l.as_ref().map(|l| (j, l.clone())))
                .collect();
            let mb = mailbox.clone();
            let pr = probe.clone();
            let stop = stop.clone();
            let interval = config.heartbeat;
            let rank = rank as u32;
            std::thread::spawn(move || {
                io_loop(reads, beat_links, mb, pr, stop, interval, rank, start);
            })
        };
        Ok(Arc::new(MeshCore {
            rank,
            size,
            links,
            mailbox,
            probe,
            start,
            config,
            stop,
            io: Mutex::new(Some(io)),
        }))
    }

    /// This endpoint's mesh index.
    pub fn mesh_rank(&self) -> usize {
        self.rank
    }

    /// Endpoints in the mesh.
    pub fn mesh_size(&self) -> usize {
        self.size
    }

    /// Whether the mesh link to `peer` is currently usable.
    pub fn peer_alive(&self, peer: usize) -> bool {
        if peer == self.rank {
            return true;
        }
        let m = self.mailbox.lock();
        let p = &m.peers[peer];
        !p.dead && !p.done
    }

    /// Enqueues a payload locally (self-sends never hit the wire).
    fn local_enqueue(&self, job: u32, src: u32, tag: u64, payload: Payload) {
        let mut m = self.mailbox.lock();
        m.queues
            .entry((job, src, tag))
            .or_default()
            .push_back(payload);
        drop(m);
        self.mailbox.cv.notify_all();
    }

    /// Sends one data frame to mesh peer `mesh_dst`, labeled with logical
    /// `src`/`dst` ranks in `job`'s namespace.
    fn send_data(
        &self,
        job: u32,
        src: u32,
        dst: u32,
        mesh_dst: usize,
        tag: u64,
        payload: &[u8],
    ) -> Result<(), CoreFail> {
        if self.mailbox.poisoned.load(Ordering::SeqCst) {
            return Err(CoreFail::Poisoned);
        }
        let Some(link) = self.links.get(mesh_dst).and_then(|l| l.as_ref()) else {
            // No link was ever established to this peer (mesh came up
            // without it): sending can never succeed, so surface the same
            // typed error a crashed peer would — callers already handle it.
            return Err(CoreFail::PeerGone);
        };
        {
            let m = self.mailbox.lock();
            if m.peers[mesh_dst].dead {
                return Err(CoreFail::PeerGone);
            }
        }
        if !link.send(FrameKind::Data, src, dst, job, tag, payload) {
            self.mailbox.mark_dead(mesh_dst);
            return Err(CoreFail::PeerGone);
        }
        self.probe
            .net_send(self.start.elapsed().as_secs_f64(), mesh_dst as u32, 0);
        Ok(())
    }

    /// Blocking receive of `(job, src, tag)`. `mesh_src` names the mesh
    /// peer hosting logical `src` so liveness can be checked; `None` means
    /// a self-receive (local queue only, no liveness).
    fn recv(
        &self,
        job: u32,
        src: u32,
        mesh_src: Option<usize>,
        tag: u64,
    ) -> Result<Payload, CoreFail> {
        let key = (job, src, tag);
        let deadline = Instant::now() + self.config.recv_timeout;
        let stale_after = self.config.stale_after();
        if self.mailbox.poisoned.load(Ordering::SeqCst) {
            return Err(CoreFail::Poisoned);
        }
        let mut m = self.mailbox.lock();
        loop {
            if let Some(q) = m.queues.get_mut(&key) {
                if let Some(payload) = q.pop_front() {
                    m.recv_messages += 1;
                    m.recv_bytes += payload.len() as u64;
                    return Ok(payload);
                }
            }
            if let Some(peer) = mesh_src {
                let p = &m.peers[peer];
                if p.dead || p.done || m.job_done.contains(&(job, src)) {
                    // Mirrors the local cluster: a finished peer with an
                    // empty queue can never satisfy this receive. A
                    // `JobDone` for this namespace means the same thing
                    // job-locally, with the link itself staying warm.
                    return Err(CoreFail::PeerGone);
                }
                if p.last_seen.elapsed() > stale_after {
                    m.peers[peer].dead = true;
                    self.probe
                        .net_timeout(self.start.elapsed().as_secs_f64(), peer as u32);
                    return Err(CoreFail::PeerGone);
                }
            }
            let now = Instant::now();
            if now >= deadline {
                if let Some(peer) = mesh_src {
                    self.probe
                        .net_timeout(self.start.elapsed().as_secs_f64(), peer as u32);
                }
                return Err(CoreFail::Timeout);
            }
            // Wake at least every heartbeat to re-check staleness.
            let wait = (deadline - now).min(self.config.heartbeat);
            match self.mailbox.cv.wait_timeout(m, wait) {
                Ok((guard, _)) => m = guard,
                Err(_) => {
                    // A waiter or producer panicked with the lock held.
                    self.mailbox.poisoned.store(true, Ordering::SeqCst);
                    return Err(CoreFail::Poisoned);
                }
            }
        }
    }

    /// Nonblocking peek: whether a `(job, src, tag)` receive would
    /// complete immediately from the local mailbox. Advisory only — the
    /// streaming executor uses it to pick ready work, falling back to
    /// blocking receives for forward progress.
    fn ready(&self, job: u32, src: u32, tag: u64) -> bool {
        let m = self.mailbox.lock();
        m.queues
            .get(&(job, src, tag))
            .is_some_and(|q| !q.is_empty())
    }

    /// Sends a job-scoped goodbye (`JobDone`) for `job` to mesh peer
    /// `mesh_dst`, labeled with our logical `src` rank in that namespace.
    fn send_job_done(&self, job: u32, src: u32, dst: u32, mesh_dst: usize) {
        if let Some(link) = self.links.get(mesh_dst).and_then(|l| l.as_ref()) {
            if !link.send(FrameKind::JobDone, src, dst, job, 0, &[]) {
                self.mailbox.mark_dead(mesh_dst);
            }
        }
    }

    /// Retires a finished job: drops its queues and done-markers and
    /// remembers the id so late frames are discarded instead of pooling.
    pub fn purge_job(&self, job: u32) {
        let mut m = self.mailbox.lock();
        m.queues.retain(|k, _| k.0 != job);
        m.job_done.retain(|k| k.0 != job);
        if m.retired.insert(job) {
            m.retired_order.push_back(job);
            if m.retired_order.len() > RETIRED_MEMORY {
                if let Some(old) = m.retired_order.pop_front() {
                    m.retired.remove(&old);
                }
            }
        }
    }

    /// Tears the mesh down: tells every peer we are done (link-level
    /// `Goodbye`), stops the I/O thread, and joins it. The I/O thread is
    /// nonblocking, so the join is prompt regardless of peer state;
    /// already-written frames stay deliverable through TCP buffering.
    pub fn shutdown(&self) {
        for (j, link) in self.links.iter().enumerate() {
            if let Some(link) = link {
                link.send(FrameKind::Goodbye, self.rank as u32, j as u32, 0, 0, &[]);
            }
        }
        self.stop.store(true, Ordering::Relaxed);
        let handle = self.io.lock().map(|mut h| h.take()).unwrap_or(None);
        if let Some(h) = handle {
            let _ = h.join();
        }
    }
}

impl Drop for MeshCore {
    fn drop(&mut self) {
        // Error-path drop: stop the I/O thread without goodbyes (peers see
        // EOF and fail over). `shutdown` already joined on the clean path.
        self.stop.store(true, Ordering::Relaxed);
        let handle = self.io.lock().map(|mut h| h.take()).unwrap_or(None);
        if let Some(h) = handle {
            let _ = h.join();
        }
    }
}

/// Per-peer read state owned by the I/O thread.
struct PeerRead {
    peer: usize,
    stream: TcpStream,
    /// Incremental reassembly buffer: bytes read but not yet framed.
    buf: Vec<u8>,
    last_seq: Option<u64>,
    open: bool,
}

/// How much to read per socket per pass.
const READ_CHUNK: usize = 64 * 1024;

/// The one I/O thread: polls every peer socket nonblockingly, parses
/// frames incrementally, feeds the mailbox, and emits heartbeats.
#[allow(clippy::too_many_arguments)]
fn io_loop(
    mut reads: Vec<PeerRead>,
    links: Vec<(usize, Arc<PeerLink>)>,
    mailbox: Arc<Mailbox>,
    probe: Probe,
    stop: Arc<AtomicBool>,
    heartbeat: Duration,
    rank: u32,
    start: Instant,
) {
    let mut last_beat = Instant::now();
    loop {
        if stop.load(Ordering::Relaxed) {
            return;
        }
        let mut progressed = false;
        for pr in reads.iter_mut().filter(|p| p.open) {
            let len = pr.buf.len();
            pr.buf.resize(len + READ_CHUNK, 0);
            let n = match std::io::Read::read(&mut pr.stream, &mut pr.buf[len..]) {
                Ok(0) => {
                    // EOF without goodbye: the peer crashed.
                    pr.buf.truncate(len);
                    pr.open = false;
                    mailbox.mark_dead(pr.peer);
                    continue;
                }
                Ok(n) => n,
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::Interrupted =>
                {
                    pr.buf.truncate(len);
                    continue;
                }
                Err(_) => {
                    pr.buf.truncate(len);
                    pr.open = false;
                    mailbox.mark_dead(pr.peer);
                    continue;
                }
            };
            pr.buf.truncate(len + n);
            progressed = true;
            // Any bytes at all prove the peer's process and link are alive:
            // a peer midway through a large frame (or trickling one through
            // a congested path) must not be declared stale while its bytes
            // are still arriving, even if no *complete* frame lands within
            // the staleness window.
            {
                let mut m = mailbox.lock();
                m.peers[pr.peer].last_seen = Instant::now();
            }
            let mut consumed = 0;
            while pr.open {
                match Frame::decode(&pr.buf[consumed..]) {
                    Ok((frame, used)) => {
                        consumed += used;
                        if !handle_frame(pr, frame, &mailbox, &probe, start) {
                            pr.open = false;
                            break;
                        }
                    }
                    Err(WireError::Truncated) => break,
                    Err(_) => {
                        // Garbage on the wire: the link is corrupt — same
                        // remedy as a crash.
                        pr.open = false;
                        mailbox.mark_dead(pr.peer);
                        break;
                    }
                }
            }
            pr.buf.drain(..consumed);
        }
        if last_beat.elapsed() >= heartbeat {
            last_beat = Instant::now();
            for (j, link) in &links {
                // Nonblocking: a saturated link skips its beat (its queued
                // data frames carry the liveness signal) instead of
                // stalling this thread — and with it reads and beats for
                // every other peer — behind one slow consumer.
                if !link.try_beat(rank, *j as u32) {
                    mailbox.mark_dead(*j);
                }
            }
        }
        if !progressed {
            // Idle: nothing readable anywhere. A short sleep keeps latency
            // in the hundreds of microseconds without spinning a core.
            std::thread::sleep(Duration::from_micros(500));
        }
    }
}

/// Processes one received frame; returns `false` to stop reading the peer.
fn handle_frame(
    pr: &mut PeerRead,
    frame: Frame,
    mailbox: &Mailbox,
    probe: &Probe,
    start: Instant,
) -> bool {
    // Per-link sequence numbers are strictly increasing whatever the job;
    // a replayed or reordered frame means the link cannot be trusted. For
    // job 0 — where logical ranks equal mesh indices — the source
    // attribution is checked too (fleet jobs use per-job namespaces the
    // link layer cannot see; their frames are checksummed and sequenced
    // like all others).
    if pr.last_seq.is_some_and(|s| frame.seq <= s)
        || (frame.job == 0
            && matches!(frame.kind, FrameKind::Data | FrameKind::JobDone)
            && frame.src as usize != pr.peer)
    {
        mailbox.mark_dead(pr.peer);
        return false;
    }
    pr.last_seq = Some(frame.seq);
    match frame.kind {
        FrameKind::Data => {
            // The freshly read bytes move straight into the mailbox as a
            // `Payload` — receivers take the same allocation.
            let payload = Payload::from_vec(frame.payload);
            let mut m = mailbox.lock();
            m.peers[pr.peer].last_seen = Instant::now();
            if !m.retired.contains(&frame.job) {
                m.queues
                    .entry((frame.job, frame.src, frame.tag))
                    .or_default()
                    .push_back(payload);
            }
            drop(m);
            probe.net_recv(start.elapsed().as_secs_f64(), pr.peer as u32, 0);
            mailbox.cv.notify_all();
            true
        }
        FrameKind::Heartbeat => {
            let mut m = mailbox.lock();
            m.peers[pr.peer].last_seen = Instant::now();
            drop(m);
            mailbox.cv.notify_all();
            true
        }
        FrameKind::JobDone => {
            let mut m = mailbox.lock();
            m.peers[pr.peer].last_seen = Instant::now();
            if !m.retired.contains(&frame.job) {
                m.job_done.insert((frame.job, frame.src));
            }
            drop(m);
            mailbox.cv.notify_all();
            true
        }
        FrameKind::Goodbye => {
            let mut m = mailbox.lock();
            m.peers[pr.peer].done = true;
            drop(m);
            mailbox.cv.notify_all();
            false
        }
        _ => {
            // Control-plane kinds have no business on a data link.
            mailbox.mark_dead(pr.peer);
            false
        }
    }
}

/// Per-endpoint traffic counters for one job (or for the whole transport
/// in the one-job case).
struct Counters {
    /// Per logical destination: `(messages, bytes)` sent.
    sent: Vec<(u64, u64)>,
    recv_messages: u64,
    recv_bytes: u64,
    mem_high_water: u64,
}

impl Counters {
    fn new(ranks: usize) -> Counters {
        Counters {
            sent: vec![(0, 0); ranks],
            recv_messages: 0,
            recv_bytes: 0,
            mem_high_water: 0,
        }
    }

    fn finish(&self, rank: usize) -> (NodeMetrics, Vec<LinkMetrics>) {
        let links: Vec<LinkMetrics> = self
            .sent
            .iter()
            .enumerate()
            .filter(|&(dst, _)| dst != rank)
            .map(|(dst, &(messages, bytes))| LinkMetrics {
                src: rank as u32,
                dst: dst as u32,
                messages,
                bytes,
            })
            .collect();
        let metrics = NodeMetrics {
            messages_sent: links.iter().map(|l| l.messages).sum(),
            bytes_sent: links.iter().map(|l| l.bytes).sum(),
            messages_received: self.recv_messages,
            bytes_received: self.recv_bytes,
            mem_high_water: self.mem_high_water,
            ..NodeMetrics::default()
        };
        (metrics, links)
    }
}

/// A per-job [`Transport`] view over a shared [`MeshCore`]: logical rank
/// `r` of the job lives on mesh peer `rank_map[r]`. Many `JobTransport`s
/// — one per concurrent job on the endpoint — share one core.
pub struct JobTransport {
    core: Arc<MeshCore>,
    job: u32,
    rank: usize,
    rank_map: Vec<usize>,
    counters: Counters,
}

impl JobTransport {
    /// A transport for logical `rank` of `job`, whose logical ranks map to
    /// mesh indices through `rank_map` (so `rank_map[rank]` must be the
    /// core's own mesh index).
    pub fn new(core: Arc<MeshCore>, job: u32, rank: usize, rank_map: Vec<usize>) -> JobTransport {
        debug_assert_eq!(rank_map[rank], core.mesh_rank());
        let ranks = rank_map.len();
        JobTransport {
            core,
            job,
            rank,
            rank_map,
            counters: Counters::new(ranks),
        }
    }

    /// Job-scoped clean shutdown: tells each participating peer this rank
    /// is done with the job (`JobDone` — the links stay warm), retires the
    /// job's mailbox state, and returns this rank's per-job counters.
    pub fn finish(self) -> (NodeMetrics, Vec<LinkMetrics>) {
        for (dst, &mesh) in self.rank_map.iter().enumerate() {
            if dst != self.rank {
                self.core
                    .send_job_done(self.job, self.rank as u32, dst as u32, mesh);
            }
        }
        self.core.purge_job(self.job);
        self.counters.finish(self.rank)
    }

    fn peer_failed(&self, peer: usize) -> FabricError {
        FabricError::PeerFailed {
            node: self.rank as u32,
            peer: peer as u32,
        }
    }
}

impl Transport for JobTransport {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.rank_map.len()
    }

    fn try_send(&mut self, dst: usize, tag: u64, payload: &Payload) -> Result<(), FabricError> {
        if dst == self.rank {
            if self.core.mailbox.poisoned.load(Ordering::SeqCst) {
                return Err(FabricError::NodeFailed {
                    node: self.rank as u32,
                });
            }
            self.core
                .local_enqueue(self.job, dst as u32, tag, payload.clone());
            return Ok(());
        }
        let mesh = self.rank_map[dst];
        match self
            .core
            .send_data(self.job, self.rank as u32, dst as u32, mesh, tag, payload)
        {
            Ok(()) => {
                let s = &mut self.counters.sent[dst];
                s.0 += 1;
                s.1 += payload.len() as u64;
                Ok(())
            }
            Err(CoreFail::Poisoned) => Err(FabricError::NodeFailed {
                node: self.rank as u32,
            }),
            Err(_) => Err(self.peer_failed(dst)),
        }
    }

    fn note_mem_use(&mut self, bytes: u64) {
        self.counters.mem_high_water = self.counters.mem_high_water.max(bytes);
    }

    fn try_recv(&mut self, src: usize, tag: u64) -> Result<Payload, FabricError> {
        let mesh = if src == self.rank {
            None
        } else {
            Some(self.rank_map[src])
        };
        match self.core.recv(self.job, src as u32, mesh, tag) {
            Ok(payload) => {
                self.counters.recv_messages += 1;
                self.counters.recv_bytes += payload.len() as u64;
                Ok(payload)
            }
            Err(CoreFail::PeerGone) => Err(self.peer_failed(src)),
            Err(CoreFail::Timeout) => Err(FabricError::RecvTimeout {
                node: self.rank as u32,
                src: src as u32,
                tag,
            }),
            Err(CoreFail::Poisoned) => Err(FabricError::NodeFailed {
                node: self.rank as u32,
            }),
        }
    }

    fn try_recv_ready(&mut self, src: usize, tag: u64) -> bool {
        self.core.ready(self.job, src as u32, tag)
    }
}

/// The classic one-job-per-process TCP [`Transport`] for one rank: a
/// private [`MeshCore`] in job namespace 0 with an identity rank map.
pub struct TcpTransport {
    core: Arc<MeshCore>,
    counters: Counters,
}

impl TcpTransport {
    /// Establishes the full mesh for `rank` out of `peers` (one data-plane
    /// listen address per rank, indexed by rank). See [`MeshCore::connect`].
    pub fn connect(
        rank: usize,
        peers: &[String],
        listener: &TcpListener,
        config: NetConfig,
        probe: Probe,
    ) -> Result<TcpTransport, NetError> {
        let core = MeshCore::connect(rank, peers, listener, config, probe)?;
        let counters = Counters::new(peers.len());
        Ok(TcpTransport { core, counters })
    }

    /// Clean shutdown: tell every peer we are done and return this rank's
    /// traffic counters. The I/O thread is joined (it is nonblocking, so
    /// the join is prompt); already-written frames stay deliverable to
    /// peers through normal TCP buffering.
    pub fn finish(self) -> (NodeMetrics, Vec<LinkMetrics>) {
        self.core.shutdown();
        self.counters.finish(self.core.mesh_rank())
    }
}

impl Transport for TcpTransport {
    fn rank(&self) -> usize {
        self.core.mesh_rank()
    }

    fn size(&self) -> usize {
        self.core.mesh_size()
    }

    fn try_send(&mut self, dst: usize, tag: u64, payload: &Payload) -> Result<(), FabricError> {
        let rank = self.core.mesh_rank();
        if self.core.mailbox.poisoned.load(Ordering::SeqCst) {
            // A thread died holding the mailbox: local state is suspect.
            return Err(FabricError::NodeFailed { node: rank as u32 });
        }
        if dst == rank {
            self.core.local_enqueue(0, dst as u32, tag, payload.clone());
            return Ok(());
        }
        match self
            .core
            .send_data(0, rank as u32, dst as u32, dst, tag, payload)
        {
            Ok(()) => {
                let s = &mut self.counters.sent[dst];
                s.0 += 1;
                s.1 += payload.len() as u64;
                Ok(())
            }
            Err(CoreFail::Poisoned) => Err(FabricError::NodeFailed { node: rank as u32 }),
            Err(_) => Err(FabricError::PeerFailed {
                node: rank as u32,
                peer: dst as u32,
            }),
        }
    }

    fn note_mem_use(&mut self, bytes: u64) {
        self.counters.mem_high_water = self.counters.mem_high_water.max(bytes);
    }

    fn try_recv(&mut self, src: usize, tag: u64) -> Result<Payload, FabricError> {
        let rank = self.core.mesh_rank();
        let mesh = if src == rank { None } else { Some(src) };
        match self.core.recv(0, src as u32, mesh, tag) {
            Ok(payload) => {
                self.counters.recv_messages += 1;
                self.counters.recv_bytes += payload.len() as u64;
                Ok(payload)
            }
            Err(CoreFail::PeerGone) => Err(FabricError::PeerFailed {
                node: rank as u32,
                peer: src as u32,
            }),
            Err(CoreFail::Timeout) => Err(FabricError::RecvTimeout {
                node: rank as u32,
                src: src as u32,
                tag,
            }),
            Err(CoreFail::Poisoned) => Err(FabricError::NodeFailed { node: rank as u32 }),
        }
    }

    fn try_recv_ready(&mut self, src: usize, tag: u64) -> bool {
        self.core.ready(0, src as u32, tag)
    }
}

/// Dials `addr`, retrying with exponential backoff while the peer process
/// comes up.
pub(crate) fn connect_with_retry(
    addr: &str,
    retry: &RetryPolicy,
    probe: &Probe,
    start: Instant,
) -> std::io::Result<TcpStream> {
    let mut backoff = retry.backoff_secs;
    let mut last_err = None;
    for attempt in 0..=retry.max_retries {
        if attempt > 0 {
            probe.net_retry(start.elapsed().as_secs_f64(), 0);
            std::thread::sleep(Duration::from_secs_f64(backoff));
            backoff *= retry.backoff_factor;
        }
        match TcpStream::connect(addr) {
            Ok(s) => return Ok(s),
            Err(e) => last_err = Some(e),
        }
    }
    // The loop runs at least once (`0..=max_retries`), so an error is
    // recorded; fall back to a typed refusal rather than panicking.
    Err(last_err.unwrap_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::ConnectionRefused, "no connect attempts")
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds an N-rank loopback mesh, one transport per thread.
    fn mesh(n: usize) -> Vec<TcpTransport> {
        let listeners: Vec<TcpListener> = (0..n)
            .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind"))
            .collect();
        let peers: Vec<String> = listeners
            .iter()
            .map(|l| l.local_addr().expect("addr").to_string())
            .collect();
        let handles: Vec<_> = listeners
            .into_iter()
            .enumerate()
            .map(|(rank, listener)| {
                let peers = peers.clone();
                std::thread::spawn(move || {
                    TcpTransport::connect(
                        rank,
                        &peers,
                        &listener,
                        NetConfig::default(),
                        Probe::disabled(),
                    )
                    .expect("mesh")
                })
            })
            .collect();
        let mut out: Vec<_> = handles
            .into_iter()
            .map(|h| h.join().expect("join"))
            .collect();
        out.sort_by_key(|t| t.rank());
        out
    }

    /// Builds an N-endpoint core mesh for job-transport tests.
    fn core_mesh(n: usize) -> Vec<Arc<MeshCore>> {
        let listeners: Vec<TcpListener> = (0..n)
            .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind"))
            .collect();
        let peers: Vec<String> = listeners
            .iter()
            .map(|l| l.local_addr().expect("addr").to_string())
            .collect();
        let handles: Vec<_> = listeners
            .into_iter()
            .enumerate()
            .map(|(rank, listener)| {
                let peers = peers.clone();
                std::thread::spawn(move || {
                    MeshCore::connect(
                        rank,
                        &peers,
                        &listener,
                        NetConfig::default(),
                        Probe::disabled(),
                    )
                    .expect("mesh")
                })
            })
            .collect();
        let mut out: Vec<_> = handles
            .into_iter()
            .map(|h| h.join().expect("join"))
            .collect();
        out.sort_by_key(|c| c.mesh_rank());
        out
    }

    #[test]
    fn two_rank_ping_pong_over_loopback() {
        let mut ts = mesh(2);
        let mut t1 = ts.pop().expect("rank 1");
        let mut t0 = ts.pop().expect("rank 0");
        let h = std::thread::spawn(move || {
            let m = t1.try_recv(0, 7).expect("recv ping");
            t1.try_send(0, 8, &m).expect("send pong");
            t1.finish()
        });
        t0.try_send(1, 7, &Payload::from(b"ping"))
            .expect("send ping");
        assert_eq!(t0.try_recv(1, 8).expect("recv pong"), b"ping");
        let (m0, l0) = t0.finish();
        let (m1, _) = h.join().expect("join");
        assert_eq!(m0.messages_sent, 1);
        assert_eq!(m0.bytes_sent, 4);
        assert_eq!(m1.messages_received, 1);
        assert_eq!(
            l0,
            vec![LinkMetrics {
                src: 0,
                dst: 1,
                messages: 1,
                bytes: 4,
            }]
        );
    }

    #[test]
    fn four_rank_all_to_all_fifo() {
        let ts = mesh(4);
        let handles: Vec<_> = ts
            .into_iter()
            .map(|mut t| {
                std::thread::spawn(move || {
                    let me = t.rank();
                    for dst in 0..t.size() {
                        for k in 0..3u8 {
                            t.try_send(dst, 5, &Payload::from_vec(vec![me as u8, k]))
                                .expect("send");
                        }
                    }
                    for src in 0..t.size() {
                        for k in 0..3u8 {
                            let m = t.try_recv(src, 5).expect("recv");
                            assert_eq!(m, vec![src as u8, k], "fifo order per (src, tag)");
                        }
                    }
                    t.finish();
                })
            })
            .collect();
        for h in handles {
            h.join().expect("join");
        }
    }

    #[test]
    fn dead_peer_surfaces_peer_failed_not_hang() {
        let mut ts = mesh(2);
        let t1 = ts.pop().expect("rank 1");
        let mut t0 = ts.pop().expect("rank 0");
        drop(t1); // rank 1 "crashes": connections drop without goodbye
        let err = t0.try_recv(1, 3).expect_err("peer is gone");
        assert_eq!(err, FabricError::PeerFailed { node: 0, peer: 1 });
    }

    #[test]
    fn finished_peer_with_drained_queue_is_peer_failed() {
        let mut ts = mesh(2);
        let mut t1 = ts.pop().expect("rank 1");
        let mut t0 = ts.pop().expect("rank 0");
        t1.try_send(0, 9, &Payload::from(b"last")).expect("send");
        t1.finish();
        // The queued message is still deliverable after the goodbye...
        assert_eq!(t0.try_recv(1, 9).expect("queued"), b"last");
        // ...but the next receive can never complete.
        let err = t0.try_recv(1, 9).expect_err("peer done");
        assert_eq!(err, FabricError::PeerFailed { node: 0, peer: 1 });
    }

    #[test]
    fn self_send_delivers_locally() {
        let mut ts = mesh(1);
        let mut t = ts.pop().expect("rank 0");
        t.try_send(0, 2, &Payload::from(b"loop")).expect("send");
        assert_eq!(t.try_recv(0, 2).expect("recv"), b"loop");
        let (m, links) = t.finish();
        assert_eq!(m.messages_sent, 0, "self-sends never hit the wire");
        assert!(links.is_empty());
    }

    #[test]
    fn concurrent_jobs_isolate_namespaces_over_one_mesh() {
        // Two endpoints, two concurrent jobs. Job 1 maps logical {0, 1} to
        // mesh {0, 1}; job 2 maps them *reversed*. Same tag, same logical
        // src — the job field is the only thing keeping them apart.
        let cores = core_mesh(2);
        let (c0, c1) = (cores[0].clone(), cores[1].clone());
        let j1_r0 = JobTransport::new(c0.clone(), 1, 0, vec![0, 1]);
        let j1_r1 = JobTransport::new(c1.clone(), 1, 1, vec![0, 1]);
        let j2_r1 = JobTransport::new(c0.clone(), 2, 1, vec![1, 0]);
        let j2_r0 = JobTransport::new(c1.clone(), 2, 0, vec![1, 0]);
        let a = std::thread::spawn(move || {
            let mut t = j1_r0;
            t.try_send(1, 5, &Payload::from(b"job1")).expect("send");
            let got = t.try_recv(1, 5).expect("recv");
            assert_eq!(got, b"1boj");
            t.finish()
        });
        let b = std::thread::spawn(move || {
            let mut t = j1_r1;
            assert_eq!(t.try_recv(0, 5).expect("recv"), b"job1");
            t.try_send(0, 5, &Payload::from(b"1boj")).expect("send");
            t.finish()
        });
        let c = std::thread::spawn(move || {
            let mut t = j2_r0;
            t.try_send(1, 5, &Payload::from(b"job2")).expect("send");
            assert_eq!(t.try_recv(1, 5).expect("recv"), b"2boj");
            t.finish()
        });
        let d = std::thread::spawn(move || {
            let mut t = j2_r1;
            assert_eq!(t.try_recv(0, 5).expect("recv"), b"job2");
            t.try_send(0, 5, &Payload::from(b"2boj")).expect("send");
            t.finish()
        });
        let (m_a, links_a) = a.join().expect("a");
        b.join().expect("b");
        c.join().expect("c");
        d.join().expect("d");
        assert_eq!(m_a.messages_sent, 1);
        assert_eq!(
            links_a,
            vec![LinkMetrics {
                src: 0,
                dst: 1,
                messages: 1,
                bytes: 4,
            }]
        );
        for c in cores {
            c.shutdown();
        }
    }

    #[test]
    fn job_done_fails_same_job_recv_but_leaves_link_warm() {
        let cores = core_mesh(2);
        let (c0, c1) = (cores[0].clone(), cores[1].clone());
        // Job 7's rank on endpoint 1 finishes immediately.
        JobTransport::new(c1.clone(), 7, 1, vec![0, 1]).finish();
        let mut waiter = JobTransport::new(c0.clone(), 7, 0, vec![0, 1]);
        // A recv from the finished rank fails typed, promptly.
        let err = waiter.try_recv(1, 3).expect_err("job peer done");
        assert_eq!(err, FabricError::PeerFailed { node: 0, peer: 1 });
        // The *link* is still alive: a fresh job runs over the same mesh.
        let mut j8_r0 = JobTransport::new(c0.clone(), 8, 0, vec![0, 1]);
        let mut j8_r1 = JobTransport::new(c1.clone(), 8, 1, vec![0, 1]);
        let h = std::thread::spawn(move || {
            let got = j8_r1.try_recv(0, 1).expect("warm link");
            assert_eq!(got, b"warm");
            j8_r1.finish();
        });
        j8_r0
            .try_send(1, 1, &Payload::from(b"warm"))
            .expect("send over warm link");
        h.join().expect("join");
        j8_r0.finish();
        for c in cores {
            c.shutdown();
        }
    }

    #[test]
    fn purged_job_drops_late_frames() {
        let cores = core_mesh(2);
        let (c0, c1) = (cores[0].clone(), cores[1].clone());
        let mut sender = JobTransport::new(c1.clone(), 3, 1, vec![0, 1]);
        c0.purge_job(3);
        sender
            .try_send(0, 2, &Payload::from(b"late"))
            .expect("send");
        sender.finish();
        // Give the io thread time to process the frame, then verify the
        // retired job's queue never materialized.
        std::thread::sleep(Duration::from_millis(100));
        let m = c0.mailbox.lock();
        assert!(
            m.queues.keys().all(|k| k.0 != 3),
            "late frame for retired job must be dropped"
        );
        drop(m);
        for c in cores {
            c.shutdown();
        }
    }

    /// A raw connected TCP pair for link-level tests.
    fn tcp_pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let a = TcpStream::connect(addr).expect("connect");
        let (b, _) = listener.accept().expect("accept");
        (a, b)
    }

    #[test]
    fn beat_skips_busy_writer_instead_of_blocking() {
        let (w, _r) = tcp_pair();
        let link = PeerLink {
            writer: Mutex::new(w),
            seq: AtomicU64::new(1),
        };
        // A data sender mid-`write_parts` holds the writer lock; the beat
        // must neither block behind it nor declare the link broken.
        let guard = link.writer.try_lock().expect("free lock");
        let started = Instant::now();
        assert!(link.try_beat(0, 1), "busy writer is not a dead link");
        assert!(
            started.elapsed() < Duration::from_millis(50),
            "beat must not block behind a held writer lock"
        );
        drop(guard);
        // With the lock free the beat actually goes out.
        assert!(link.try_beat(0, 1));
    }

    #[test]
    fn beat_skips_saturated_socket_instead_of_killing_peer() {
        let (w, _r) = tcp_pair();
        w.set_nonblocking(true).expect("nonblocking");
        let link = PeerLink {
            writer: Mutex::new(w),
            seq: AtomicU64::new(1),
        };
        // Saturate the kernel send buffer: nobody reads `_r`, so writes
        // eventually refuse. Top off with single bytes so not even a
        // partial header fits.
        {
            let mut w = link.writer.lock().expect("lock");
            let chunk = [0u8; 64 * 1024];
            loop {
                match std::io::Write::write(&mut *w, &chunk) {
                    Ok(_) => {}
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) => panic!("unexpected write error: {e}"),
                }
            }
            loop {
                match std::io::Write::write(&mut *w, &[0u8]) {
                    Ok(_) => {}
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) => panic!("unexpected write error: {e}"),
                }
            }
        }
        let started = Instant::now();
        assert!(
            link.try_beat(0, 1),
            "a full send buffer means data is queued, not that the peer died"
        );
        assert!(
            started.elapsed() < Duration::from_millis(50),
            "beat must not sleep-retry against a saturated socket"
        );
    }

    #[test]
    fn raw_bytes_refresh_liveness_before_a_frame_completes() {
        let (writer, reader) = tcp_pair();
        reader.set_nonblocking(true).expect("nonblocking");
        let mailbox = Arc::new(Mailbox {
            inner: Mutex::new(MailboxInner {
                queues: HashMap::new(),
                peers: (0..2)
                    .map(|_| PeerState {
                        done: false,
                        dead: false,
                        last_seen: Instant::now(),
                    })
                    .collect(),
                job_done: HashSet::new(),
                retired: HashSet::new(),
                retired_order: VecDeque::new(),
                recv_messages: 0,
                recv_bytes: 0,
            }),
            cv: Condvar::new(),
            poisoned: AtomicBool::new(false),
        });
        let stop = Arc::new(AtomicBool::new(false));
        let io = {
            let reads = vec![PeerRead {
                peer: 1,
                stream: reader,
                buf: Vec::new(),
                last_seq: None,
                open: true,
            }];
            let mb = mailbox.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                io_loop(
                    reads,
                    Vec::new(),
                    mb,
                    Probe::disabled(),
                    stop,
                    Duration::from_secs(3600),
                    0,
                    Instant::now(),
                );
            })
        };
        // One valid data frame from peer 1, delivered in two halves with a
        // long pause between them — the shape of a large payload trickling
        // through a congested path.
        let mut frame = Vec::new();
        write_parts(
            &mut frame,
            FrameKind::Data,
            9,
            1,
            0,
            0,
            1,
            b"slow-big-frame",
        )
        .expect("encode");
        let split = frame.len() / 2;
        let stale_before = {
            let m = mailbox.lock();
            m.peers[1].last_seen
        };
        std::thread::sleep(Duration::from_millis(50));
        std::io::Write::write_all(&mut &writer, &frame[..split]).expect("first half");
        std::thread::sleep(Duration::from_millis(50));
        {
            let m = mailbox.lock();
            assert!(
                m.peers[1].last_seen > stale_before,
                "half a frame is still proof of life"
            );
            assert!(
                m.peers[1].last_seen.elapsed() < Duration::from_millis(200),
                "liveness must track the bytes, not the frame boundary"
            );
            assert!(m.queues.is_empty(), "no complete frame has arrived yet");
        }
        std::io::Write::write_all(&mut &writer, &frame[split..]).expect("second half");
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            {
                let m = mailbox.lock();
                if m.queues
                    .get(&(0, 1, 9))
                    .is_some_and(|q| q.front().is_some_and(|p| &p[..] == b"slow-big-frame"))
                {
                    break;
                }
            }
            assert!(Instant::now() < deadline, "reassembled frame never landed");
            std::thread::sleep(Duration::from_millis(5));
        }
        stop.store(true, Ordering::Relaxed);
        io.join().expect("join io loop");
    }
}
