//! The distributed launcher: spawns one worker process per rank, ships the
//! job, and collects the merged outcome.

use crate::error::{NetError, RejectReason};
use crate::proto::{JobSpec, RankReport, PROTO_VERSION};
use crate::wire::{Frame, FrameKind, WireError};
use sage_core::{model_from_sexpr, Placement, Project};
use sage_fabric::{FabricMetrics, NodeMetrics, RunReport};
use sage_model::HardwareShelf;
use sage_runtime::{GlueProgram, RuntimeError, SinkResults};
use sage_visualizer::Trace;
use std::io::{BufRead, BufReader};
use std::net::TcpStream;
use std::process::Child;
use std::time::{Duration, Instant};

/// What to run and how.
#[derive(Clone, Debug)]
pub struct LaunchOptions {
    /// Ranks (worker processes) to spawn.
    pub workers: usize,
    /// Iterations (data sets).
    pub iterations: u32,
    /// Use the optimized (shared-buffer) run-time options.
    pub optimized: bool,
    /// Collect probe events from every rank into the merged trace.
    pub probes: bool,
    /// Run the copy-heavy baseline data plane on every rank (see
    /// `RuntimeOptions::copy_baseline`).
    pub copy_baseline: bool,
    /// Arm the per-process vector-clock race detector on every rank (see
    /// `RuntimeOptions::race_detect`).
    pub race_detect: bool,
    /// Heartbeat period override in milliseconds shipped to every rank
    /// (`None` = transport default).
    pub heartbeat_ms: Option<u64>,
    /// Streaming pipeline depth shipped to every rank (`None` =
    /// lock-step; see `RuntimeOptions::pipeline`).
    pub pipeline: Option<u32>,
    /// Per-buffer ring-depth caps for streaming, indexed by buffer id.
    /// The caller computes these from the static pipeline-safety plan;
    /// empty means every buffer uses the global depth.
    pub pipeline_depths: Vec<u32>,
}

/// A merged distributed run.
#[derive(Debug)]
pub struct LaunchOutcome {
    /// Merged sink deposits from all ranks.
    pub results: SinkResults,
    /// Merged report: per-rank traffic counters and per-link wire counters.
    pub report: RunReport,
    /// Merged, time-sorted trace (empty unless probes were on).
    pub trace: Trace,
    /// The glue program the job ran (regenerate-once, for assembling sink
    /// output).
    pub program: GlueProgram,
    /// Per-rank wall seconds spent inside the executor.
    pub rank_walls: Vec<f64>,
}

/// Spawns the worker process for one rank. It must run `sage worker` (or
/// equivalent) with stdout piped, so the launcher can read the listen
/// banner.
pub type Spawner<'a> = dyn Fn(usize) -> std::io::Result<Child> + 'a;

/// Runs `model_text` across `opts.workers` freshly spawned worker
/// processes and merges the per-rank reports.
///
/// The launcher regenerates the glue program locally (same deterministic
/// pipeline the workers use) to validate the model up front and to let
/// callers assemble sink output from the merged deposits.
pub fn launch(
    model_text: &str,
    opts: &LaunchOptions,
    spawn: &Spawner<'_>,
) -> Result<LaunchOutcome, NetError> {
    if opts.workers == 0 {
        return Err(NetError::BadJob("need at least one worker".into()));
    }
    let t0 = Instant::now();
    let model =
        model_from_sexpr(model_text).map_err(|e| NetError::BadJob(format!("model: {e}")))?;
    let project = Project::new(model, HardwareShelf::cspi_with_nodes(opts.workers));
    let (program, _) = project
        .generate(&Placement::Aligned)
        .map_err(|e| NetError::BadJob(format!("codegen: {e}")))?;

    // Spawn every worker and read its listen banner.
    let mut children: Vec<Child> = Vec::with_capacity(opts.workers);
    let mut addrs: Vec<String> = Vec::with_capacity(opts.workers);
    for rank in 0..opts.workers {
        let mut child = spawn(rank).map_err(|e| {
            kill_all(&mut children);
            NetError::Io(format!("spawning worker {rank}: {e}"))
        })?;
        let stdout = child.stdout.take();
        children.push(child);
        let Some(stdout) = stdout else {
            kill_all(&mut children);
            return Err(NetError::Protocol(format!(
                "worker {rank} spawned without piped stdout"
            )));
        };
        let mut line = String::new();
        if BufReader::new(stdout).read_line(&mut line).is_err() || line.is_empty() {
            kill_all(&mut children);
            return Err(NetError::WorkerDied { rank: rank as u32 });
        }
        let Some(addr) = crate::worker::parse_banner(&line) else {
            kill_all(&mut children);
            return Err(NetError::Protocol(format!(
                "worker {rank} announced `{}` instead of a listen banner",
                line.trim()
            )));
        };
        addrs.push(addr.to_string());
    }

    // Ship the job over one control connection per worker.
    let mut controls: Vec<TcpStream> = Vec::with_capacity(opts.workers);
    for (rank, addr) in addrs.iter().enumerate() {
        let control = match TcpStream::connect(addr) {
            Ok(c) => c,
            Err(e) => {
                kill_all(&mut children);
                return Err(NetError::Io(format!("control connect to rank {rank}: {e}")));
            }
        };
        let _ = control.set_nodelay(true);
        let spec = JobSpec {
            proto_version: PROTO_VERSION,
            rank: rank as u32,
            ranks: opts.workers as u32,
            iterations: opts.iterations,
            optimized: opts.optimized,
            probes: opts.probes,
            copy_baseline: opts.copy_baseline,
            race_detect: opts.race_detect,
            heartbeat_ms: opts.heartbeat_ms,
            pipeline: opts.pipeline,
            pipeline_depths: opts.pipeline_depths.clone(),
            model: model_text.to_string(),
            peers: addrs.clone(),
        };
        let job = Frame {
            kind: FrameKind::Job,
            tag: 0,
            src: u32::MAX,
            dst: rank as u32,
            job: 0,
            seq: 1,
            payload: spec.encode(),
        };
        if let Err(e) = job.write_to(&mut &control) {
            kill_all(&mut children);
            return Err(e.into());
        }
        controls.push(control);
    }

    // Collect one result per rank; a dropped control connection (the
    // process died) is a typed worker death, not a hang.
    let collectors: Vec<_> = controls
        .into_iter()
        .enumerate()
        .map(|(rank, control)| {
            std::thread::spawn(move || -> Result<RankReport, NetError> {
                let frame = Frame::read_from(&mut &control).map_err(|e| match e {
                    WireError::Truncated => NetError::WorkerDied { rank: rank as u32 },
                    other => NetError::Wire(other),
                })?;
                if frame.kind == FrameKind::Reject {
                    // The worker refused the job with a typed reason;
                    // surface a version mismatch as the first-class error
                    // it is (`ours`/`theirs` from this side's view).
                    return Err(match RejectReason::decode(&frame.payload)? {
                        RejectReason::VersionMismatch { ours, theirs } => {
                            NetError::VersionMismatch {
                                ours: theirs,
                                theirs: ours,
                            }
                        }
                        reason => NetError::Rejected(reason),
                    });
                }
                if frame.kind != FrameKind::Result {
                    return Err(NetError::Protocol(format!(
                        "rank {rank}: expected result frame, got {:?}",
                        frame.kind
                    )));
                }
                RankReport::decode(&frame.payload)
            })
        })
        .collect();
    let outcomes: Vec<Result<RankReport, NetError>> = collectors
        .into_iter()
        .map(|h| {
            h.join()
                .unwrap_or_else(|_| Err(NetError::Protocol("collector thread panicked".into())))
        })
        .collect();
    let wall = t0.elapsed();
    // All ranks have reported or died; nothing left to wait politely for.
    kill_all(&mut children);

    merge_outcomes(program, outcomes, wall, opts.workers)
}

/// Merges per-rank outcomes, surfacing the root-cause error with the same
/// deterministic priority the in-process executor uses: a rank that failed
/// outright beats a rank that merely noticed a dead or silent peer, and
/// ties break by rank order. Public so the fleet client can merge the
/// per-rank reports a scheduler hands back the same way the launcher does.
pub fn merge_outcomes(
    program: GlueProgram,
    outcomes: Vec<Result<RankReport, NetError>>,
    wall: Duration,
    ranks: usize,
) -> Result<LaunchOutcome, NetError> {
    let mut results = SinkResults::default();
    let mut nodes = vec![NodeMetrics::default(); ranks];
    let mut links = Vec::new();
    let mut events = Vec::new();
    let mut rank_walls = vec![0.0; ranks];
    let mut primary: Option<NetError> = None;
    let mut secondary: Option<NetError> = None;
    for (rank, outcome) in outcomes.into_iter().enumerate() {
        match outcome {
            Ok(report) => {
                rank_walls[rank] = report.wall_secs;
                nodes[rank] = report.metrics;
                links.extend(report.links);
                events.extend(report.events);
                match report.error {
                    None => {
                        for ((f, i, t), bytes) in report.deposits {
                            results.insert(f, i, t, bytes);
                        }
                    }
                    Some(e @ (RuntimeError::PeerFailed { .. } | RuntimeError::Timeout { .. })) => {
                        secondary.get_or_insert(NetError::Runtime(e));
                    }
                    Some(e) => {
                        primary.get_or_insert(NetError::Runtime(e));
                    }
                }
            }
            Err(NetError::WorkerDied { rank }) => {
                // The process is gone: report it as the node failure it is.
                primary.get_or_insert(NetError::Runtime(RuntimeError::NodeFailed { node: rank }));
            }
            Err(e) => {
                primary.get_or_insert(e);
            }
        }
    }
    if let Some(e) = primary.or(secondary) {
        return Err(e);
    }
    events.sort_by(|a, b| a.time.total_cmp(&b.time));
    Ok(LaunchOutcome {
        results,
        report: RunReport {
            metrics: FabricMetrics { nodes, links },
            wall,
            makespan: 0.0,
        },
        trace: Trace::new(events),
        program,
        rank_walls,
    })
}

fn kill_all(children: &mut [Child]) {
    for c in children.iter_mut() {
        let _ = c.kill();
        let _ = c.wait();
    }
}
