//! Typed errors for the network subsystem.

use crate::codec::{Reader, Writer};
use crate::wire::WireError;
use sage_runtime::RuntimeError;

/// Why an endpoint refused a job or a handshake. Travels on the wire in a
/// `Reject` frame so both sides report the same typed cause.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RejectReason {
    /// The two endpoints speak different control-protocol versions.
    VersionMismatch {
        /// Version the rejecting side speaks.
        ours: u32,
        /// Version the peer offered.
        theirs: u32,
    },
    /// The scheduler's bounded job queue is full.
    QueueFull {
        /// Queue depth at rejection time (== the configured bound).
        depth: u32,
    },
    /// The job asks for more ranks than the fleet has workers.
    InsufficientWorkers {
        /// Ranks the job requested.
        want: u32,
        /// Workers the fleet has.
        have: u32,
    },
    /// The fleet is draining: in-flight jobs finish, new ones are refused.
    Draining,
}

impl RejectReason {
    /// Serializes the reason for a `Reject` frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            RejectReason::VersionMismatch { ours, theirs } => {
                w.u8(1);
                w.u32(*ours);
                w.u32(*theirs);
            }
            RejectReason::QueueFull { depth } => {
                w.u8(2);
                w.u32(*depth);
            }
            RejectReason::InsufficientWorkers { want, have } => {
                w.u8(3);
                w.u32(*want);
                w.u32(*have);
            }
            RejectReason::Draining => w.u8(4),
        }
        w.0
    }

    /// Decodes a `Reject` frame payload.
    pub fn decode(buf: &[u8]) -> Result<RejectReason, NetError> {
        let mut r = Reader::new(buf);
        let reason = match r.u8()? {
            1 => RejectReason::VersionMismatch {
                ours: r.u32()?,
                theirs: r.u32()?,
            },
            2 => RejectReason::QueueFull { depth: r.u32()? },
            3 => RejectReason::InsufficientWorkers {
                want: r.u32()?,
                have: r.u32()?,
            },
            4 => RejectReason::Draining,
            other => return Err(NetError::Protocol(format!("bad reject reason {other}"))),
        };
        r.done()?;
        Ok(reason)
    }
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RejectReason::VersionMismatch { ours, theirs } => {
                write!(
                    f,
                    "protocol version mismatch (we speak v{ours}, peer offered v{theirs})"
                )
            }
            RejectReason::QueueFull { depth } => {
                write!(f, "job queue full at depth {depth}")
            }
            RejectReason::InsufficientWorkers { want, have } => {
                write!(f, "job wants {want} ranks but fleet has {have} workers")
            }
            RejectReason::Draining => write!(f, "fleet is draining"),
        }
    }
}

/// An error from the distributed transport, worker, launcher, or fleet.
#[derive(Clone, Debug, PartialEq)]
pub enum NetError {
    /// A socket operation failed (message carries the OS detail).
    Io(String),
    /// A frame failed to decode (bad magic/version/kind, checksum
    /// mismatch, oversized payload, truncation).
    Wire(WireError),
    /// A peer violated the connection protocol (wrong handshake, frame out
    /// of sequence, unexpected kind).
    Protocol(String),
    /// The two endpoints speak different control-protocol versions —
    /// caught by the explicit version field in the Hello/Job handshake
    /// instead of surfacing as a banner or codec parse failure.
    VersionMismatch {
        /// Version this end speaks.
        ours: u32,
        /// Version the peer offered.
        theirs: u32,
    },
    /// The far end refused the job with a typed reason.
    Rejected(RejectReason),
    /// A worker process died or dropped its control connection before
    /// reporting a result.
    WorkerDied {
        /// The rank whose process is gone.
        rank: u32,
    },
    /// The run itself failed on some rank; carries the merged root cause.
    Runtime(RuntimeError),
    /// The job description was unusable (model parse/lint/codegen failure).
    BadJob(String),
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Io(m) => write!(f, "socket error: {m}"),
            NetError::Wire(e) => write!(f, "wire error: {e}"),
            NetError::Protocol(m) => write!(f, "protocol violation: {m}"),
            NetError::VersionMismatch { ours, theirs } => {
                write!(
                    f,
                    "protocol version mismatch: we speak v{ours}, peer offered v{theirs}"
                )
            }
            NetError::Rejected(r) => write!(f, "job rejected: {r}"),
            NetError::WorkerDied { rank } => {
                write!(f, "worker for rank {rank} died before reporting")
            }
            NetError::Runtime(e) => write!(f, "distributed run failed: {e}"),
            NetError::BadJob(m) => write!(f, "bad job: {m}"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<WireError> for NetError {
    fn from(e: WireError) -> Self {
        NetError::Wire(e)
    }
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reject_reasons_round_trip() {
        for reason in [
            RejectReason::VersionMismatch { ours: 2, theirs: 1 },
            RejectReason::QueueFull { depth: 128 },
            RejectReason::InsufficientWorkers { want: 8, have: 4 },
            RejectReason::Draining,
        ] {
            assert_eq!(RejectReason::decode(&reason.encode()).unwrap(), reason);
        }
    }

    #[test]
    fn bad_reject_tag_is_typed() {
        assert!(matches!(
            RejectReason::decode(&[99]).unwrap_err(),
            NetError::Protocol(_)
        ));
    }
}
