//! Typed errors for the network subsystem.

use crate::wire::WireError;
use sage_runtime::RuntimeError;

/// An error from the distributed transport, worker, or launcher.
#[derive(Clone, Debug, PartialEq)]
pub enum NetError {
    /// A socket operation failed (message carries the OS detail).
    Io(String),
    /// A frame failed to decode (bad magic/version/kind, checksum
    /// mismatch, oversized payload, truncation).
    Wire(WireError),
    /// A peer violated the connection protocol (wrong handshake, frame out
    /// of sequence, unexpected kind).
    Protocol(String),
    /// A worker process died or dropped its control connection before
    /// reporting a result.
    WorkerDied {
        /// The rank whose process is gone.
        rank: u32,
    },
    /// The run itself failed on some rank; carries the merged root cause.
    Runtime(RuntimeError),
    /// The job description was unusable (model parse/lint/codegen failure).
    BadJob(String),
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Io(m) => write!(f, "socket error: {m}"),
            NetError::Wire(e) => write!(f, "wire error: {e}"),
            NetError::Protocol(m) => write!(f, "protocol violation: {m}"),
            NetError::WorkerDied { rank } => {
                write!(f, "worker for rank {rank} died before reporting")
            }
            NetError::Runtime(e) => write!(f, "distributed run failed: {e}"),
            NetError::BadJob(m) => write!(f, "bad job: {m}"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<WireError> for NetError {
    fn from(e: WireError) -> Self {
        NetError::Wire(e)
    }
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e.to_string())
    }
}
