//! Static happens-before race proofs over generated glue programs.
//!
//! The model layer allows fan-in: several producers may feed one input
//! port. Whether that is *safe* is a property of the generated program —
//! which threads write which byte regions of the port, and whether the
//! transfer ledger orders them. This pass proves it without executing
//! anything, mirroring exactly the happens-before relation the run-time's
//! vector-clock detector (`sage run --race-detect`) observes:
//!
//! * **program order** — each node walks its schedule serially, so slot
//!   `k` of iteration `i` precedes slot `k+1` of iteration `i`, and (in
//!   lock-step execution) the last slot of iteration `i` precedes the
//!   first slot of iteration `i+1`;
//! * **synchronization order** — a matched transfer orders the producing
//!   task's write before the consuming task's read `delay` iterations
//!   later, exactly where the detector joins clocks on a mailbox
//!   hand-off. There are **no** global iteration barriers: two nodes are
//!   ordered only through chains of transfers.
//!
//! Accesses are per `(consumer function, input-port group, version)`: a
//! write of buffer `b` at producer iteration `s` lands on port version
//! `s + delay_b`; a read at consumer iteration `t` reads version `t`.
//! Byte regions come from the same [`Redistribution`] plans the executor
//! follows. Two overlapping accesses to one version with at least one
//! writer and no happens-before path between them are a race:
//!
//! * `SAGE070` — write/write, both task paths named (error);
//! * `SAGE071` — read/write (error);
//! * `SAGE072` — ordered in lock-step, but only through an
//!   iteration-boundary (wraparound) edge that pipelined execution
//!   removes: the race is depth-conditional, so the involved buffers'
//!   safe pipeline depth is capped at 1 (warning);
//! * `SAGE073` — unordered write/write where both writers are the same
//!   generator with the same parameters splatting identical regions: a
//!   benign same-value splat (warning). The dynamic detector applies the
//!   same exemption by content hash.
//!
//! [`Redistribution`]: sage_runtime::Redistribution

use crate::{buffer_label, BufferPlans};
use sage_lint::{Diagnostic, Diagnostics, ModelSpans};
use sage_runtime::race::{overlaps, union_intervals};
use sage_runtime::{GlueProgram, Task};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// One verified race (or depth hazard) between two accesses.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RaceFinding {
    /// Diagnostic code: `SAGE070`..`SAGE073`.
    pub code: &'static str,
    /// The contested port, as `consumer.port`.
    pub port: String,
    /// One access, as `write/read by <task path> at iteration N`.
    pub first: String,
    /// The other access, same form.
    pub second: String,
    /// Logical buffers written by the racing accesses.
    pub buffers: Vec<u32>,
    /// How many thread pairs collapsed into this finding (the named pair
    /// plus `pairs - 1` analogous ones).
    pub pairs: usize,
}

/// The proven happens-before analysis of one program.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RaceAnalysis {
    /// Happens-before graph size: one position per scheduled task.
    pub positions: usize,
    /// Synchronization edges (matched transfer pairs) in the graph.
    pub sync_edges: usize,
    /// Buffers whose safe pipeline depth is capped at 1 by a `SAGE072`
    /// depth-conditional ordering (sorted, deduplicated).
    pub capped: Vec<u32>,
    /// All findings, deterministic order.
    pub findings: Vec<RaceFinding>,
}

impl RaceAnalysis {
    /// `true` when no error-severity race was found (`SAGE070`/`SAGE071`).
    pub fn is_clean(&self) -> bool {
        !self
            .findings
            .iter()
            .any(|f| f.code == "SAGE070" || f.code == "SAGE071")
    }
}

/// Per-position shortest iteration-distance matrix: `dist[u][v] = Some(d)`
/// means an event at position `u` in iteration `i` happens before an event
/// at `v` in any iteration `>= i + d`.
struct HbGraph {
    dist: Vec<Vec<Option<u32>>>,
}

impl HbGraph {
    fn new(adj: &[Vec<(usize, u32)>]) -> HbGraph {
        let n = adj.len();
        let mut dist = vec![vec![None; n]; n];
        for (src, row) in dist.iter_mut().enumerate() {
            // Dijkstra; weights are iteration distances (>= 0).
            let mut heap = BinaryHeap::new();
            row[src] = Some(0);
            heap.push(Reverse((0u32, src)));
            while let Some(Reverse((d, u))) = heap.pop() {
                if row[u] != Some(d) {
                    continue;
                }
                for &(v, w) in &adj[u] {
                    let nd = d.saturating_add(w);
                    if row[v].is_none_or(|cur| nd < cur) {
                        row[v] = Some(nd);
                        heap.push(Reverse((nd, v)));
                    }
                }
            }
        }
        HbGraph { dist }
    }

    /// Whether an access at position `u`, iteration `i`, is ordered (either
    /// way) against one at position `v`, iteration `j`.
    fn ordered(&self, u: usize, i: i64, v: usize, j: i64) -> bool {
        if u == v {
            // The same task's invocations are serial across iterations.
            return i != j;
        }
        let fwd = self.dist[u][v].is_some_and(|d| j - i >= d as i64);
        let bwd = self.dist[v][u].is_some_and(|d| i - j >= d as i64);
        fwd || bwd
    }
}

/// One access to a port version, at the representative version `t*`.
struct Access {
    write: bool,
    task: Task,
    pos: usize,
    /// Iteration of the accessing task at the representative version.
    iter: i64,
    region: Vec<(usize, usize)>,
    /// The written buffer (`None` for reads).
    buffer: Option<u32>,
    /// Producer function id (for the benign-splat classification).
    producer: u32,
}

fn describe(program: &GlueProgram, a: &Access) -> String {
    format!(
        "{} by {} at iteration {}",
        if a.write { "write" } else { "read" },
        program.task_path(a.task),
        a.iter
    )
}

/// Proves the happens-before relation and scans every input-port group for
/// conflicting access pairs. Pure analysis — no diagnostics; see [`check`]
/// for the reporting pass.
pub fn analyze(program: &GlueProgram, plans: &BufferPlans) -> RaceAnalysis {
    // ---- Positions: one per scheduled task --------------------------
    let mut pos_of: HashMap<(u32, u32), usize> = HashMap::new();
    let mut node_slots: Vec<Vec<usize>> = Vec::with_capacity(program.schedules.len());
    for sched in &program.schedules {
        let mut slots = Vec::with_capacity(sched.len());
        for &task in sched {
            let p = pos_of.len();
            pos_of.insert((task.fn_id, task.thread), p);
            slots.push(p);
        }
        node_slots.push(slots);
    }
    let n = pos_of.len();

    // ---- Edges ------------------------------------------------------
    // Lock-step order: slot k -> k+1 (weight 0) plus the wraparound edge
    // last -> first (weight 1: the next iteration's walk). Product order
    // drops the wraparound — with several iterations in flight, the only
    // same-node guarantee left is slot order within an iteration.
    let mut lockstep: Vec<Vec<(usize, u32)>> = vec![Vec::new(); n];
    let mut product: Vec<Vec<(usize, u32)>> = vec![Vec::new(); n];
    for slots in &node_slots {
        for w in slots.windows(2) {
            lockstep[w[0]].push((w[1], 0));
            product[w[0]].push((w[1], 0));
        }
        if let (Some(&first), Some(&last)) = (slots.first(), slots.last()) {
            if first != last {
                lockstep[last].push((first, 1));
            }
        }
    }
    // Synchronization edges: a matched transfer of buffer `b` orders the
    // producer thread's write at iteration `s` before the consumer
    // thread's read at iteration `s + delay`.
    let mut sync_edges = 0usize;
    for b in &program.buffers {
        let Some(plan) = &plans[b.id as usize] else {
            continue;
        };
        for (i, row) in plan.pairs.iter().enumerate() {
            for (j, intervals) in row.iter().enumerate() {
                if intervals.is_empty() {
                    continue;
                }
                let (Some(&pu), Some(&pv)) = (
                    pos_of.get(&(b.producer, i as u32)),
                    pos_of.get(&(b.consumer, j as u32)),
                ) else {
                    continue;
                };
                lockstep[pu].push((pv, b.delay));
                product[pu].push((pv, b.delay));
                sync_edges += 1;
            }
        }
    }
    let hb_lock = HbGraph::new(&lockstep);
    let hb_prod = HbGraph::new(&product);

    // ---- Access sets per (function, input-port group) ---------------
    let mut findings: Vec<RaceFinding> = Vec::new();
    let mut capped: Vec<u32> = Vec::new();
    // Dedup: one finding per (code, port, producer pair); later pairs
    // only bump the count.
    let mut seen: HashMap<(&'static str, String, u32, u32), usize> = HashMap::new();
    for f in &program.functions {
        // Group inputs by consumer port, first-appearance order.
        let mut groups: Vec<(&str, Vec<u32>)> = Vec::new();
        for &bid in &f.inputs {
            let b = &program.buffers[bid as usize];
            if b.consumer != f.id || plans[bid as usize].is_none() {
                continue; // mis-wired or degenerate: reported elsewhere
            }
            match groups.iter_mut().find(|(p, _)| *p == b.consumer_port) {
                Some((_, v)) => v.push(bid),
                None => groups.push((&b.consumer_port, vec![bid])),
            }
        }
        for (port, buffers) in groups {
            let port_label = format!("{}.{port}", f.name);
            // Representative version: every producer iteration
            // `t* - delay` is non-negative, and pairwise iteration
            // distances are invariant under the choice of version.
            let t_star = buffers
                .iter()
                .map(|&bid| program.buffers[bid as usize].delay as i64)
                .max()
                .unwrap_or(0);
            let mut accesses: Vec<Access> = Vec::new();
            for &bid in &buffers {
                let b = &program.buffers[bid as usize];
                let plan = plans[bid as usize].as_ref().expect("filtered above");
                for (i, row) in plan.pairs.iter().enumerate() {
                    let region = union_intervals(row.iter().map(|iv| iv.as_slice()));
                    if region.is_empty() {
                        continue;
                    }
                    let task = Task {
                        fn_id: b.producer,
                        thread: i as u32,
                    };
                    let Some(&pos) = pos_of.get(&(task.fn_id, task.thread)) else {
                        continue;
                    };
                    accesses.push(Access {
                        write: true,
                        task,
                        pos,
                        iter: t_star - b.delay as i64,
                        region,
                        buffer: Some(bid),
                        producer: b.producer,
                    });
                }
            }
            let first_plan = plans[buffers[0] as usize].as_ref().expect("filtered above");
            for j in 0..first_plan.dst.len() {
                let region = union_intervals(
                    buffers
                        .iter()
                        .filter_map(|&bid| plans[bid as usize].as_ref())
                        .map(|p| p.dst[j].runs()),
                );
                if region.is_empty() {
                    continue;
                }
                let task = Task {
                    fn_id: f.id,
                    thread: j as u32,
                };
                let Some(&pos) = pos_of.get(&(task.fn_id, task.thread)) else {
                    continue;
                };
                accesses.push(Access {
                    write: false,
                    task,
                    pos,
                    iter: t_star,
                    region,
                    buffer: None,
                    producer: f.id,
                });
            }

            // ---- Conflict scan --------------------------------------
            for (ai, a) in accesses.iter().enumerate() {
                for b in &accesses[ai + 1..] {
                    if !(a.write || b.write) || a.task == b.task {
                        continue;
                    }
                    if !overlaps(&a.region, &b.region) {
                        continue;
                    }
                    let code = if !hb_lock.ordered(a.pos, a.iter, b.pos, b.iter) {
                        if a.write && b.write {
                            let benign = program.functions[a.producer as usize].function
                                == program.functions[b.producer as usize].function
                                && program.functions[a.producer as usize].params
                                    == program.functions[b.producer as usize].params
                                && a.region == b.region;
                            if benign {
                                "SAGE073"
                            } else {
                                "SAGE070"
                            }
                        } else {
                            "SAGE071"
                        }
                    } else if !hb_prod.ordered(a.pos, a.iter, b.pos, b.iter) {
                        for bid in [a.buffer, b.buffer].into_iter().flatten() {
                            if !capped.contains(&bid) {
                                capped.push(bid);
                            }
                        }
                        "SAGE072"
                    } else {
                        continue;
                    };
                    let (plo, phi) = if a.producer <= b.producer {
                        (a.producer, b.producer)
                    } else {
                        (b.producer, a.producer)
                    };
                    let key = (code, port_label.clone(), plo, phi);
                    if let Some(&idx) = seen.get(&key) {
                        findings[idx].pairs += 1;
                        continue;
                    }
                    let (mut first, mut second) = (describe(program, a), describe(program, b));
                    if second < first {
                        std::mem::swap(&mut first, &mut second);
                    }
                    let mut bufs: Vec<u32> = [a.buffer, b.buffer].into_iter().flatten().collect();
                    bufs.sort_unstable();
                    bufs.dedup();
                    seen.insert(key, findings.len());
                    findings.push(RaceFinding {
                        code,
                        port: port_label.clone(),
                        first,
                        second,
                        buffers: bufs,
                        pairs: 1,
                    });
                }
            }
        }
    }
    capped.sort_unstable();
    RaceAnalysis {
        positions: n,
        sync_edges,
        capped,
        findings,
    }
}

/// Runs the race pass and reports `SAGE070`..`SAGE073` diagnostics. The
/// returned analysis feeds the pipeline pass (its `capped` buffers force
/// `DepthLimit::Race`).
pub fn check(
    program: &GlueProgram,
    plans: &BufferPlans,
    spans: Option<&ModelSpans>,
    diags: &mut Diagnostics,
) -> RaceAnalysis {
    let analysis = analyze(program, plans);
    for f in &analysis.findings {
        let labels = f
            .buffers
            .iter()
            .map(|&bid| buffer_label(program, bid))
            .collect::<Vec<_>>()
            .join(", ");
        let span = spans.and_then(|s| {
            f.buffers.first().and_then(|&bid| {
                let b = &program.buffers[bid as usize];
                s.block(&program.functions[b.producer as usize].name)
                    .or_else(|| s.block(&program.functions[b.consumer as usize].name))
            })
        });
        let more = match f.pairs {
            0 | 1 => String::new(),
            2 => " (and 1 analogous thread pair)".to_owned(),
            n => format!(" (and {} analogous thread pairs)", n - 1),
        };
        let diag = match f.code {
            "SAGE070" => Diagnostic::error(
                f.code,
                format!(
                    "write/write race on `{}`: {} and {} have no happens-before \
                     ordering{more}; involved: {labels}",
                    f.port, f.first, f.second
                ),
            )
            .with_note(
                "the port's bytes depend on arrival order; the run-time's \
                 vector-clock detector (`sage run --race-detect`) fails this \
                 program with RaceDetected",
            ),
            "SAGE071" => Diagnostic::error(
                f.code,
                format!(
                    "read/write race on `{}`: {} and {} have no happens-before \
                     ordering{more}; involved: {labels}",
                    f.port, f.first, f.second
                ),
            )
            .with_note(
                "the reader may observe a partly written port version; no \
                 transfer chain orders these tasks",
            ),
            "SAGE072" => Diagnostic::warning(
                f.code,
                format!(
                    "depth-conditional ordering on `{}`: {} and {} are ordered \
                     only by the lock-step iteration boundary{more}; involved: \
                     {labels}",
                    f.port, f.first, f.second
                ),
            )
            .with_note(
                "pipelined execution interleaves iterations and removes that \
                 boundary, so the involved buffers' safe pipeline depth is \
                 capped at 1",
            ),
            _ => Diagnostic::warning(
                f.code,
                format!(
                    "benign same-value splat on `{}`: {} and {} are unordered \
                     but identical generators over identical regions{more}; \
                     involved: {labels}",
                    f.port, f.first, f.second
                ),
            )
            .with_note(
                "either arrival order leaves the same bytes; the dynamic \
                 detector exempts byte-identical splats by content hash",
            ),
        };
        diags.push(diag.with_span_opt(span));
    }
    analysis
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::structure;
    use sage_model::{Properties, Striping};
    use sage_runtime::{FnRole, FunctionDescriptor, GlueProgram, LogicalBufferDesc};

    #[allow(clippy::too_many_arguments)]
    fn mk_fn(
        id: u32,
        name: &str,
        function: &str,
        role: FnRole,
        threads: u32,
        placement: Vec<u32>,
        inputs: Vec<u32>,
        outputs: Vec<u32>,
    ) -> FunctionDescriptor {
        FunctionDescriptor {
            id,
            name: name.into(),
            function: function.into(),
            role,
            threads,
            placement,
            flops: 0.0,
            mem_bytes: 0.0,
            inputs,
            outputs,
            params: Properties::new(),
        }
    }

    fn mk_buf(
        id: u32,
        producer: u32,
        consumer: u32,
        send: Striping,
        recv: Striping,
        delay: u32,
    ) -> LogicalBufferDesc {
        LogicalBufferDesc {
            id,
            producer,
            producer_port: "out".into(),
            consumer,
            consumer_port: "in".into(),
            shape: vec![4, 4],
            elem_bytes: 1,
            send_striping: send,
            recv_striping: recv,
            delay,
        }
    }

    /// Two 2-threaded sources (rows-striped and cols-striped) fan into one
    /// sink port on 2 nodes: cross-node overlapping writes, no ordering.
    fn racy_program() -> GlueProgram {
        GlueProgram {
            app_name: "racy".into(),
            functions: vec![
                mk_fn(
                    0,
                    "a",
                    "fill.a",
                    FnRole::Source,
                    2,
                    vec![0, 1],
                    vec![],
                    vec![0],
                ),
                mk_fn(
                    1,
                    "b",
                    "fill.b",
                    FnRole::Source,
                    2,
                    vec![0, 1],
                    vec![],
                    vec![1],
                ),
                mk_fn(
                    2,
                    "snk",
                    "sink.null",
                    FnRole::Sink,
                    2,
                    vec![0, 1],
                    vec![0, 1],
                    vec![],
                ),
            ],
            buffers: vec![
                mk_buf(0, 0, 2, Striping::BY_ROWS, Striping::BY_ROWS, 0),
                mk_buf(1, 1, 2, Striping::BY_COLS, Striping::BY_ROWS, 0),
            ],
            schedules: (0..2)
                .map(|t| {
                    [0u32, 1, 2]
                        .iter()
                        .map(|&fn_id| Task { fn_id, thread: t })
                        .collect()
                })
                .collect(),
        }
    }

    fn run(program: &GlueProgram) -> RaceAnalysis {
        let mut diags = sage_lint::Diagnostics::new();
        let plans = structure::plan_buffers(program, None, &mut diags);
        assert_eq!(diags.error_count(), 0);
        analyze(program, &plans)
    }

    #[test]
    fn fan_in_overlapping_writes_race() {
        let analysis = run(&racy_program());
        assert!(!analysis.is_clean());
        let f = analysis
            .findings
            .iter()
            .find(|f| f.code == "SAGE070")
            .expect("write/write race");
        assert_eq!(f.port, "snk.in");
        // Both task paths named.
        assert!(f.first.contains("`a[") || f.second.contains("`a["), "{f:?}");
        assert!(f.first.contains("`b[") || f.second.contains("`b["), "{f:?}");
    }

    #[test]
    fn single_writer_chain_is_clean() {
        let program = GlueProgram {
            app_name: "clean".into(),
            functions: vec![
                mk_fn(
                    0,
                    "src",
                    "fill.a",
                    FnRole::Source,
                    2,
                    vec![0, 1],
                    vec![],
                    vec![0],
                ),
                mk_fn(
                    1,
                    "snk",
                    "sink.null",
                    FnRole::Sink,
                    2,
                    vec![0, 1],
                    vec![0],
                    vec![],
                ),
            ],
            buffers: vec![mk_buf(0, 0, 1, Striping::BY_ROWS, Striping::BY_COLS, 0)],
            schedules: (0..2)
                .map(|t| {
                    [0u32, 1]
                        .iter()
                        .map(|&fn_id| Task { fn_id, thread: t })
                        .collect()
                })
                .collect(),
        };
        let analysis = run(&program);
        assert!(analysis.is_clean());
        assert!(analysis.findings.is_empty(), "{:?}", analysis.findings);
        assert!(analysis.positions > 0 && analysis.sync_edges > 0);
    }

    #[test]
    fn identical_generators_are_benign_splat() {
        let mut program = racy_program();
        // Same kernel, same params, and identical (replicated) regions.
        program.functions[1].function = "fill.a".into();
        program.buffers[0].send_striping = Striping::Replicated;
        program.buffers[0].recv_striping = Striping::Replicated;
        program.buffers[1].send_striping = Striping::Replicated;
        program.buffers[1].recv_striping = Striping::Replicated;
        // Put the two transmitting threads (`a[0]`, `b[0]`) on different
        // nodes so nothing orders their writes.
        program.functions[1].placement = vec![1, 0];
        program.schedules = vec![
            vec![
                Task {
                    fn_id: 0,
                    thread: 0,
                },
                Task {
                    fn_id: 1,
                    thread: 1,
                },
                Task {
                    fn_id: 2,
                    thread: 0,
                },
            ],
            vec![
                Task {
                    fn_id: 0,
                    thread: 1,
                },
                Task {
                    fn_id: 1,
                    thread: 0,
                },
                Task {
                    fn_id: 2,
                    thread: 1,
                },
            ],
        ];
        let analysis = run(&program);
        assert!(analysis.is_clean());
        assert!(
            analysis.findings.iter().any(|f| f.code == "SAGE073"),
            "{:?}",
            analysis.findings
        );
    }

    #[test]
    fn delay_mismatch_is_depth_conditional() {
        // Two writers into one port, one arc delayed: within lock-step the
        // iteration boundary orders them, pipelining does not.
        let mut program = racy_program();
        program.buffers[1].delay = 1;
        // Make both writers same-node single-thread so the only ordering is
        // the schedule walk.
        for f in &mut program.functions {
            f.threads = 1;
            f.placement = vec![0];
        }
        program.schedules = vec![
            [0u32, 1, 2]
                .iter()
                .map(|&fn_id| Task { fn_id, thread: 0 })
                .collect(),
            Vec::new(),
        ];
        for b in &mut program.buffers {
            b.send_striping = Striping::Replicated;
            b.recv_striping = Striping::Replicated;
        }
        let analysis = run(&program);
        assert!(analysis.is_clean(), "{:?}", analysis.findings);
        let f = analysis
            .findings
            .iter()
            .find(|f| f.code == "SAGE072")
            .expect("depth-conditional finding");
        assert!(!analysis.capped.is_empty());
        assert!(f.buffers.iter().any(|b| analysis.capped.contains(b)));
    }
}
