//! # sage-check
//!
//! Abstract interpretation of generated glue programs: everything the
//! model-layer lints cannot see because it only exists *after* code
//! generation — the function table, the logical buffer table, the per-node
//! schedules, and the redistribution plans the executor will follow.
//!
//! `sage-lint` proves properties of the *input* (the Designer model and the
//! Alter scripts); this crate proves properties of the *output*, without
//! executing it. Three passes walk the program exactly the way the run-time
//! kernel does:
//!
//! * [`structure`] — symbolic shape/element-count propagation: degenerate
//!   or unstripeable [`LogicalBufferDesc`]s, function-table wiring
//!   (use-before-init `SAGE052`, double-write `SAGE053`), kernel shape and
//!   dtype contracts (`SAGE054`), and transfer-tag field widths
//!   (`SAGE057`);
//! * [`transfers`] — cross-rank transfer matching over the same
//!   [`Redistribution`] plans the executor uses: every send must have
//!   exactly one compatible receive (`SAGE050`), with tag collisions and
//!   byte mismatches as `SAGE051`, each finding naming both endpoints'
//!   task paths;
//! * [`memory`] — per-node memory high-water-mark from buffer live ranges
//!   against the hardware model's DRAM (`SAGE055`) and a per-iteration
//!   bandwidth-feasibility estimate against the link capacities
//!   (`SAGE056`);
//! * [`pipeline`] — cross-iteration hazard analysis over the `delay` arcs:
//!   per-buffer maximum safe pipeline depths (`SAGE060` WAR hazards,
//!   `SAGE061` feedback cycles, `SAGE062` depth-infeasible memory),
//!   emitted as a [`pipeline::PipelinePlan`] artifact that gates the
//!   executor's block-interleaved pipeline-validate mode;
//! * [`race`] — static happens-before race proofs over every input-port
//!   group: unordered overlapping writes (`SAGE070`), read/write races
//!   (`SAGE071`), depth-conditional orderings that cap the pipeline plan
//!   (`SAGE072`), and benign same-value splats (`SAGE073`) — all
//!   cross-validated by the run-time's vector-clock detector
//!   (`sage run --race-detect`).
//!
//! Findings render through `sage-lint`'s diagnostics engine (rustc-style
//! and JSON), with spans back into the model source when a
//! [`ModelSpans`] index is supplied.
//!
//! [`LogicalBufferDesc`]: sage_runtime::LogicalBufferDesc
//! [`Redistribution`]: sage_runtime::Redistribution
//! [`ModelSpans`]: sage_lint::ModelSpans

#![warn(missing_docs)]

pub mod memory;
pub mod pipeline;
pub mod race;
pub mod structure;
pub mod transfers;

use sage_lint::{Diagnostic, Diagnostics, ModelSpans};
use sage_model::HardwareSpec;
use sage_runtime::{GlueProgram, Redistribution};

/// Checks a generated glue program against the hardware model it was
/// generated for, without executing it.
///
/// The program must be structurally sound ([`GlueProgram::validate`]) and
/// match the hardware's node count; otherwise a single `SAGE041` is
/// reported and the deeper passes are skipped.
pub fn check_program(
    program: &GlueProgram,
    hw: &HardwareSpec,
    spans: Option<&ModelSpans>,
) -> Diagnostics {
    let mut diags = Diagnostics::new();
    if let Err(e) = program.validate() {
        diags.push(
            Diagnostic::error("SAGE041", format!("malformed glue program: {e}")).with_note(
                "the program fails its structural self-checks; abstract \
                 interpretation needs a well-formed program",
            ),
        );
        return diags;
    }
    if program.node_count() != hw.node_count() {
        diags.push(
            Diagnostic::error(
                "SAGE041",
                format!(
                    "program generated for {} nodes, hardware model `{}` has {}",
                    program.node_count(),
                    hw.name,
                    hw.node_count()
                ),
            )
            .with_note("capacity checks need the program and the hardware to agree on the machine"),
        );
        return diags;
    }
    let plans = structure::plan_buffers(program, spans, &mut diags);
    let tag_overflow = structure::check_tag_widths(program, spans, &mut diags);
    structure::check_wiring(program, &plans, spans, &mut diags);
    structure::check_kernel_contracts(program, &plans, spans, &mut diags);
    if !tag_overflow {
        transfers::check(program, &plans, spans, &mut diags);
    }
    memory::check(program, hw, &plans, spans, &mut diags);
    let races = race::check(program, &plans, spans, &mut diags);
    pipeline::check(program, hw, &plans, &races.capped, None, spans, &mut diags);
    diags
}

/// Runs only the pipeline-safety pass over a generated program, proving
/// its [`pipeline::PipelinePlan`] and reporting `SAGE060`/`SAGE061`/
/// `SAGE062` findings — with `requested` as the depth the caller intends
/// to run at (depth-infeasibility is judged against it). This is the
/// `sage pipeline` engine; [`check_program`] runs the same pass with no
/// requested depth as part of the full battery.
///
/// The plan is `None` only when the program fails its structural
/// self-checks or disagrees with the hardware model (`SAGE041`).
pub fn check_pipeline(
    program: &GlueProgram,
    hw: &HardwareSpec,
    requested: Option<u32>,
    spans: Option<&ModelSpans>,
) -> (Option<pipeline::PipelinePlan>, Diagnostics) {
    let mut diags = Diagnostics::new();
    if let Err(e) = program.validate() {
        diags.push(Diagnostic::error(
            "SAGE041",
            format!("malformed glue program: {e}"),
        ));
        return (None, diags);
    }
    if program.node_count() != hw.node_count() {
        diags.push(Diagnostic::error(
            "SAGE041",
            format!(
                "program generated for {} nodes, hardware model `{}` has {}",
                program.node_count(),
                hw.name,
                hw.node_count()
            ),
        ));
        return (None, diags);
    }
    let plans = structure::plan_buffers(program, spans, &mut diags);
    // Race caps feed the depth proof but report through `sage race` /
    // `check_program`, not here.
    let races = race::analyze(program, &plans);
    let plan = pipeline::check(
        program,
        hw,
        &plans,
        &races.capped,
        requested,
        spans,
        &mut diags,
    );
    (Some(plan), diags)
}

/// Runs only the happens-before race pass over a generated program,
/// reporting `SAGE070`..`SAGE073` findings plus the proven
/// [`race::RaceAnalysis`] artifact. This is the `sage race` engine;
/// [`check_program`] runs the same pass as part of the full battery.
///
/// The analysis is `None` only when the program fails its structural
/// self-checks (`SAGE041`).
pub fn check_race(
    program: &GlueProgram,
    spans: Option<&ModelSpans>,
) -> (Option<race::RaceAnalysis>, Diagnostics) {
    let mut diags = Diagnostics::new();
    if let Err(e) = program.validate() {
        diags.push(Diagnostic::error(
            "SAGE041",
            format!("malformed glue program: {e}"),
        ));
        return (None, diags);
    }
    let plans = structure::plan_buffers(program, spans, &mut diags);
    let races = race::check(program, &plans, spans, &mut diags);
    (Some(races), diags)
}

/// The proven [`pipeline::PipelinePlan`] for a well-formed program, with
/// no diagnostics — the artifact-only front door the fuzz harness uses to
/// pick a depth for its pipelined scheduling cell.
///
/// Returns `None` when the program fails its structural self-checks,
/// disagrees with the hardware's node count, or any buffer descriptor is
/// degenerate (all already reported by [`check_program`] as errors).
pub fn pipeline_plan(program: &GlueProgram, hw: &HardwareSpec) -> Option<pipeline::PipelinePlan> {
    if program.validate().is_err() || program.node_count() != hw.node_count() {
        return None;
    }
    let mut scratch = Diagnostics::new();
    let plans = structure::plan_buffers(program, None, &mut scratch);
    if scratch.error_count() > 0 || plans.iter().any(Option::is_none) {
        return None;
    }
    let races = race::analyze(program, &plans);
    Some(pipeline::analyze(program, hw, &plans, &races.capped))
}

/// The proven [`race::RaceAnalysis`] for a well-formed program, with no
/// diagnostics — the artifact-only front door for `sage race --format
/// json` and the fuzz harness's race axis.
///
/// Returns `None` when the program fails its structural self-checks or
/// any buffer descriptor is degenerate (already reported by
/// [`check_program`] as errors).
pub fn race_analysis(program: &GlueProgram) -> Option<race::RaceAnalysis> {
    if program.validate().is_err() {
        return None;
    }
    let mut scratch = Diagnostics::new();
    let plans = structure::plan_buffers(program, None, &mut scratch);
    if scratch.error_count() > 0 || plans.iter().any(Option::is_none) {
        return None;
    }
    Some(race::analyze(program, &plans))
}

/// Predicted per-node memory high-water marks (bytes) for a well-formed
/// program: the static walk behind `SAGE055`, exposed so a dynamic run
/// can be cross-validated against it (the prediction is a documented
/// lower bound for any buffer scheme, so measured peaks must never
/// exceed it — `predicted[node] >= measured[node]` for every node).
///
/// Returns `None` when the program fails its structural self-checks or
/// any buffer descriptor is degenerate (those cases are already reported
/// by [`check_program`] as errors).
pub fn predicted_peaks(program: &GlueProgram) -> Option<Vec<usize>> {
    if program.validate().is_err() {
        return None;
    }
    let mut scratch = Diagnostics::new();
    let plans = structure::plan_buffers(program, None, &mut scratch);
    if scratch.error_count() > 0 || plans.iter().any(Option::is_none) {
        return None;
    }
    Some(
        memory::node_peaks(program, &plans)
            .into_iter()
            .map(|(peak, _)| peak)
            .collect(),
    )
}

/// A human-readable label for a logical buffer: id and both endpoints.
pub(crate) fn buffer_label(program: &GlueProgram, bid: u32) -> String {
    let b = &program.buffers[bid as usize];
    let pf = &program.functions[b.producer as usize];
    let cf = &program.functions[b.consumer as usize];
    format!(
        "buffer {} (`{}.{}` -> `{}.{}`)",
        b.id, pf.name, b.producer_port, cf.name, b.consumer_port
    )
}

/// Per-buffer redistribution plans; `None` where the descriptor is
/// degenerate or unstripeable (already reported by the structure pass).
pub(crate) type BufferPlans = Vec<Option<Redistribution>>;
