//! Symbolic shape and wiring analysis of the function and buffer tables.
//!
//! Propagates shapes and element counts through every descriptor the way
//! the striping engine will, without touching any payload bytes:
//! degenerate descriptors and unstripeable layouts, function-table wiring
//! (a kernel reading a buffer no transfer delivers is a use-before-init;
//! two functions claiming the same output buffer is a double-write), the
//! shape/dtype contracts of the registered kernels, and the transfer-tag
//! field widths the runtime packs ids into.

use crate::{buffer_label, BufferPlans};
use sage_lint::{Diagnostic, Diagnostics, ModelSpans};
use sage_model::Striping;
use sage_runtime::{FunctionDescriptor, GlueProgram, Layout, Redistribution};

/// Maximum logical buffers the 20-bit tag field can address.
const MAX_BUFFERS: usize = 1 << 20;
/// Maximum threads per function the 10-bit tag fields can address.
const MAX_THREADS: u32 = 1 << 10;

/// Plans every buffer's redistribution, reporting degenerate descriptors
/// (`SAGE054`) and unstripeable layouts (`SAGE019`) instead of planning
/// them.
pub fn plan_buffers(
    program: &GlueProgram,
    spans: Option<&ModelSpans>,
    diags: &mut Diagnostics,
) -> BufferPlans {
    let mut plans: BufferPlans = Vec::with_capacity(program.buffers.len());
    for b in &program.buffers {
        let pf = &program.functions[b.producer as usize];
        let cf = &program.functions[b.consumer as usize];
        if b.elem_bytes == 0 || b.shape.is_empty() || b.shape.contains(&0) {
            diags.push(
                Diagnostic::error(
                    "SAGE054",
                    format!(
                        "{}: degenerate payload (shape {:?}, {} bytes per element)",
                        buffer_label(program, b.id),
                        b.shape,
                        b.elem_bytes
                    ),
                )
                .with_note("every dimension extent and the element size must be nonzero")
                .with_span_opt(spans.and_then(|s| s.block(&pf.name))),
            );
            plans.push(None);
            continue;
        }
        let mut layout_ok = true;
        for (striping, threads, who) in [
            (b.send_striping, pf.threads as usize, &pf.name),
            (b.recv_striping, cf.threads as usize, &cf.name),
        ] {
            if let Striping::Striped { dim } = striping {
                if dim >= b.shape.len() {
                    diags.push(
                        Diagnostic::error(
                            "SAGE019",
                            format!(
                                "{}: `{who}` stripes dimension {dim} of a {}-D payload",
                                buffer_label(program, b.id),
                                b.shape.len()
                            ),
                        )
                        .with_span_opt(spans.and_then(|s| s.block(who))),
                    );
                    layout_ok = false;
                } else if threads == 0 || b.shape[dim] % threads != 0 {
                    diags.push(
                        Diagnostic::error(
                            "SAGE019",
                            format!(
                                "{}: dimension {dim} of extent {} cannot stripe \
                                 over `{who}`'s {threads} threads",
                                buffer_label(program, b.id),
                                b.shape[dim]
                            ),
                        )
                        .with_span_opt(spans.and_then(|s| s.block(who))),
                    );
                    layout_ok = false;
                }
            }
        }
        if !layout_ok {
            plans.push(None);
            continue;
        }
        plans.push(Some(Redistribution::plan(
            &b.shape,
            b.elem_bytes,
            b.send_striping,
            pf.threads as usize,
            b.recv_striping,
            cf.threads as usize,
        )));
    }
    plans
}

/// Checks the program against the transfer-tag field widths (`SAGE057`).
/// Returns `true` when tags would alias, in which case the transfer ledger
/// is meaningless and must be skipped.
pub fn check_tag_widths(
    program: &GlueProgram,
    spans: Option<&ModelSpans>,
    diags: &mut Diagnostics,
) -> bool {
    let mut overflow = false;
    if program.buffers.len() > MAX_BUFFERS {
        diags.push(
            Diagnostic::error(
                "SAGE057",
                format!(
                    "the buffer table has {} entries; transfer tags encode at \
                     most {MAX_BUFFERS}",
                    program.buffers.len()
                ),
            )
            .with_note("tags would alias between distinct logical buffers"),
        );
        overflow = true;
    }
    for f in &program.functions {
        if f.threads > MAX_THREADS {
            diags.push(
                Diagnostic::error(
                    "SAGE057",
                    format!(
                        "function `{}` has {} threads; transfer tags encode at \
                         most {MAX_THREADS}",
                        f.name, f.threads
                    ),
                )
                .with_note("thread indices above the field width alias lower threads' transfers")
                .with_span_opt(spans.and_then(|s| s.block(&f.name))),
            );
            overflow = true;
        }
    }
    overflow
}

/// Checks function-table wiring against the buffer table: an input listing
/// a buffer routed to another function is a use-before-init (`SAGE052`),
/// an output listing a buffer another function produces is a double-write
/// (`SAGE053`). A plan whose producer intervals do not cover a consumer
/// stripe is also a use-before-init.
pub fn check_wiring(
    program: &GlueProgram,
    plans: &BufferPlans,
    spans: Option<&ModelSpans>,
    diags: &mut Diagnostics,
) {
    for f in &program.functions {
        for &bid in &f.inputs {
            let b = &program.buffers[bid as usize];
            if b.consumer != f.id {
                let owner = &program.functions[b.consumer as usize];
                diags.push(
                    Diagnostic::error(
                        "SAGE052",
                        format!(
                            "function `{}` lists {} as an input, but the \
                             buffer's consumer is `{}`",
                            f.name,
                            buffer_label(program, bid),
                            owner.name
                        ),
                    )
                    .with_note("no transfer delivers the buffer here; the kernel would read uninitialized bytes")
                    .with_span_opt(spans.and_then(|s| s.block(&f.name))),
                );
            }
        }
        for &bid in &f.outputs {
            let b = &program.buffers[bid as usize];
            if b.producer != f.id {
                let owner = &program.functions[b.producer as usize];
                diags.push(
                    Diagnostic::error(
                        "SAGE053",
                        format!(
                            "function `{}` lists {} as an output, but the \
                             buffer's producer is `{}`",
                            f.name,
                            buffer_label(program, bid),
                            owner.name
                        ),
                    )
                    .with_note("two writers would race on the buffer and its transfer tags")
                    .with_span_opt(spans.and_then(|s| s.block(&f.name))),
                );
            }
        }
    }
    // Coverage safety net: every consumer stripe must be fully covered by
    // producer intervals. Unreachable with the current planner's striping
    // algebra, but cheap insurance against future layout kinds.
    for (bid, plan) in plans.iter().enumerate() {
        let Some(plan) = plan else { continue };
        let b = &program.buffers[bid];
        let cf = &program.functions[b.consumer as usize];
        for j in 0..cf.threads as usize {
            let expect = plan.dst.get(j).map(Layout::len).unwrap_or(0);
            let got = plan.incoming_bytes(j);
            if got != expect {
                diags.push(
                    Diagnostic::error(
                        "SAGE052",
                        format!(
                            "consumer thread {j} of {} receives {got} of its \
                             {expect} stripe bytes; the rest is never written",
                            buffer_label(program, bid as u32)
                        ),
                    )
                    .with_span_opt(spans.and_then(|s| s.block(&cf.name))),
                );
            }
        }
    }
}

/// One port's thread-local stripe: (local shape, element bytes).
type PortShape = (Vec<usize>, usize);

/// The thread-local input/output stripe shapes of a function, derived from
/// its canonically wired, plannable buffers. `None` when any port's
/// descriptor is broken (those already carry their own diagnostics).
fn local_port_shapes(
    program: &GlueProgram,
    plans: &BufferPlans,
    f: &FunctionDescriptor,
) -> Option<(Vec<PortShape>, Vec<PortShape>)> {
    let mut ins = Vec::with_capacity(f.inputs.len());
    let mut seen_ports: Vec<&str> = Vec::new();
    for &bid in &f.inputs {
        let b = &program.buffers[bid as usize];
        if b.consumer != f.id || plans[bid as usize].is_none() {
            return None;
        }
        if seen_ports.contains(&b.consumer_port.as_str()) {
            // Fan-in: the port's buffers merge into one kernel-visible
            // stripe, so the contract sees one shape per port.
            continue;
        }
        seen_ports.push(&b.consumer_port);
        ins.push((
            Layout::local_shape(&b.shape, b.recv_striping, f.threads as usize),
            b.elem_bytes,
        ));
    }
    let mut outs = Vec::with_capacity(f.outputs.len());
    for &bid in &f.outputs {
        let b = &program.buffers[bid as usize];
        if b.producer != f.id || plans[bid as usize].is_none() {
            return None;
        }
        outs.push((
            Layout::local_shape(&b.shape, b.send_striping, f.threads as usize),
            b.elem_bytes,
        ));
    }
    Some((ins, outs))
}

fn stripe_bytes(port: &PortShape) -> usize {
    port.0.iter().product::<usize>() * port.1
}

/// Checks every function invocation against its kernel's shape and dtype
/// contract (`SAGE054`): the conditions under which the registered kernel
/// would fail or panic at run time, decided from the descriptors alone.
pub fn check_kernel_contracts(
    program: &GlueProgram,
    plans: &BufferPlans,
    spans: Option<&ModelSpans>,
    diags: &mut Diagnostics,
) {
    for f in &program.functions {
        let Some((ins, outs)) = local_port_shapes(program, plans, f) else {
            continue;
        };
        let mut violations: Vec<String> = Vec::new();
        let mut viol = |m: String| violations.push(m);
        let complex_ports = |ins: &[(Vec<usize>, usize)],
                             outs: &[(Vec<usize>, usize)],
                             viol: &mut dyn FnMut(String)| {
            for (k, p) in ins.iter().chain(outs.iter()).enumerate() {
                if p.1 != 8 {
                    viol(format!(
                        "port {k} carries {}-byte elements, but the kernel \
                         computes on 8-byte complex samples",
                        p.1
                    ));
                }
            }
        };
        let one_in_one_out = |ins: &[(Vec<usize>, usize)],
                              outs: &[(Vec<usize>, usize)],
                              viol: &mut dyn FnMut(String)|
         -> bool {
            if ins.is_empty() || outs.is_empty() {
                viol("the kernel needs one input and one output port".into());
                return false;
            }
            true
        };
        let bytes_preserved = |ins: &[(Vec<usize>, usize)],
                               outs: &[(Vec<usize>, usize)],
                               viol: &mut dyn FnMut(String)| {
            let (i, o) = (stripe_bytes(&ins[0]), stripe_bytes(&outs[0]));
            if i != o {
                viol(format!(
                    "the kernel copies its {i}-byte input stripe into a \
                     {o}-byte output stripe"
                ));
            }
        };
        match f.function.as_str() {
            "id" => {
                if ins.len() != outs.len() {
                    viol(format!(
                        "`id` needs matching port counts, got {} inputs and {} \
                         outputs",
                        ins.len(),
                        outs.len()
                    ));
                } else {
                    for (k, (i, o)) in ins.iter().zip(outs.iter()).enumerate() {
                        let (ib, ob) = (stripe_bytes(i), stripe_bytes(o));
                        if ib != ob {
                            viol(format!(
                                "`id` copies input {k} of {ib} bytes into an \
                                 output stripe of {ob} bytes"
                            ));
                        }
                    }
                }
            }
            "workload.matrix" => {
                if outs.is_empty() {
                    viol("`workload.matrix` needs an output port".into());
                } else {
                    if outs[0].0.len() != 2 {
                        viol(format!(
                            "`workload.matrix` emits a matrix stripe, but the \
                             output's local shape is {:?}",
                            outs[0].0
                        ));
                    }
                    complex_ports(&[], &outs[..1], &mut viol);
                    let b = &program.buffers[f.outputs[0] as usize];
                    let row_striped = matches!(b.send_striping, Striping::Striped { dim: 0 });
                    if f.threads > 1 && !row_striped {
                        viol(format!(
                            "`workload.matrix` assumes a row-striped output \
                             (thread t owns rows t*rows..), but the port is \
                             {:?} over {} threads",
                            b.send_striping, f.threads
                        ));
                    }
                }
            }
            "isspl.fft_rows" if one_in_one_out(&ins, &outs, &mut viol) => {
                complex_ports(&ins[..1], &outs[..1], &mut viol);
                bytes_preserved(&ins, &outs, &mut viol);
                let cols = ins[0].0.last().copied().unwrap_or(0);
                if !cols.is_power_of_two() {
                    viol(format!(
                        "FFT length {cols} (the local stripe's row length) \
                         is not a power of two"
                    ));
                }
            }
            "isspl.transpose" if one_in_one_out(&ins, &outs, &mut viol) => {
                complex_ports(&ins[..1], &outs[..1], &mut viol);
                if ins[0].0.len() != 2 {
                    viol(format!(
                        "`isspl.transpose` needs a matrix stripe, got local \
                         shape {:?}",
                        ins[0].0
                    ));
                } else {
                    let (r, c) = (ins[0].0[0], ins[0].0[1]);
                    if outs[0].0 != [c, r] {
                        viol(format!(
                            "transposing a local [{r}, {c}] stripe needs a \
                             [{c}, {r}] output, got {:?}",
                            outs[0].0
                        ));
                    }
                }
            }
            "isspl.transpose_fft_rows" | "isspl.transpose_ifft_rows"
                if one_in_one_out(&ins, &outs, &mut viol) =>
            {
                complex_ports(&ins[..1], &outs[..1], &mut viol);
                bytes_preserved(&ins, &outs, &mut viol);
                if ins[0].0.len() != 2 {
                    viol(format!(
                        "the kernel needs a matrix stripe, got local shape \
                         {:?}",
                        ins[0].0
                    ));
                } else {
                    let r = ins[0].0[0];
                    if !r.is_power_of_two() {
                        viol(format!(
                            "FFT length {r} (the local stripe's row count, \
                             which becomes the row length after the \
                             transpose) is not a power of two"
                        ));
                    }
                }
            }
            "isspl.lowpass_mask" if one_in_one_out(&ins, &outs, &mut viol) => {
                complex_ports(&ins[..1], &outs[..1], &mut viol);
                bytes_preserved(&ins, &outs, &mut viol);
                if ins[0].0.len() != 2 {
                    viol(format!(
                        "`isspl.lowpass_mask` needs a matrix stripe, got \
                         local shape {:?}",
                        ins[0].0
                    ));
                }
            }
            "isspl.window_rows" | "isspl.magnitude" if one_in_one_out(&ins, &outs, &mut viol) => {
                complex_ports(&ins[..1], &outs[..1], &mut viol);
                bytes_preserved(&ins, &outs, &mut viol);
            }
            "workload.bytes" if outs.is_empty() => {
                viol("`workload.bytes` needs at least one output port".into());
            }
            "workload.splat" => {
                if ins.is_empty() || outs.is_empty() {
                    viol("`workload.splat` needs one input and at least one output port".into());
                } else {
                    let ib = stripe_bytes(&ins[0]);
                    for (k, o) in outs.iter().enumerate() {
                        let ob = stripe_bytes(o);
                        if ib != ob {
                            viol(format!(
                                "`workload.splat` copies its {ib}-byte input \
                                 stripe into output {k} of {ob} bytes"
                            ));
                        }
                    }
                }
            }
            "workload.mix" => {
                if ins.len() < 2 || outs.is_empty() {
                    viol(
                        "`workload.mix` needs two inputs (forward, feedback) \
                         and at least one output port"
                            .into(),
                    );
                } else {
                    let ib = stripe_bytes(&ins[0]);
                    let fb = stripe_bytes(&ins[1]);
                    if fb != ib {
                        viol(format!(
                            "`workload.mix` combines its {ib}-byte forward \
                             stripe with a feedback stripe of {fb} bytes"
                        ));
                    }
                    for (k, o) in outs.iter().enumerate() {
                        let ob = stripe_bytes(o);
                        if ib != ob {
                            viol(format!(
                                "`workload.mix` writes its {ib}-byte mix into \
                                 output {k} of {ob} bytes"
                            ));
                        }
                    }
                }
            }
            _ => {} // unknown kernels carry no static contract
        }
        for message in violations {
            diags.push(
                Diagnostic::error(
                    "SAGE054",
                    format!("function `{}` (kernel `{}`): {message}", f.name, f.function),
                )
                .with_note("the kernel would reject this invocation or panic at run time")
                .with_span_opt(spans.and_then(|s| s.block(&f.name))),
            );
        }
    }
}
