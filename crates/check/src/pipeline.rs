//! Pipeline-safety analysis: static per-buffer depth proofs.
//!
//! The executor's pipeline-validate mode runs `d` iterations in flight by
//! giving every logical buffer and hand-off a `d`-slot ring (slot =
//! iteration mod `d`). That is bit-identical to lock-step execution *iff*
//! no ring slot is overwritten while an earlier iteration's payload is
//! still unconsumed. This pass proves, per buffer, the largest `d` for
//! which that holds, without executing anything:
//!
//! * a same-iteration arc (`delay == 0`) is produced and consumed inside
//!   the same iteration of the schedule walk, so its ring never aliases
//!   live data — safe at **any** depth;
//! * a `delay k > 0` arc crosses the iteration boundary: iteration `i`
//!   consumes the payload produced in iteration `i - k`, so with two or
//!   more iterations in flight the producer's next payload lands in (or
//!   races with) a slot the consumer has not yet drained. The safe depths
//!   for such an arc are not downward-closed past 1, so the proof caps the
//!   buffer at depth **1** (lock-step). When the arc closes a feedback
//!   cycle the whole cycle serialises (`SAGE061`); otherwise it is a plain
//!   cross-iteration write-after-read hazard (`SAGE060`).
//!
//! Depth also costs memory: `d` iterations in flight scale every node's
//! live-buffer peak by ~`d` (each buffer holds a `d`-slot ring). The pass
//! reuses [`memory::node_peaks`] to find the deepest ring that still fits
//! the hardware model's DRAM, reporting depth-infeasible requests as
//! `SAGE062`.
//!
//! The result is a [`PipelinePlan`] artifact with its own line-oriented
//! codec (like `FaultPlan`), consumed by `sage pipeline`, the fuzz
//! harness's pipelined scheduling axis, and `sage run
//! --pipeline-validate`.

use crate::{buffer_label, memory, BufferPlans};
use sage_lint::{Diagnostic, Diagnostics, ModelSpans};
use sage_model::HardwareSpec;
use sage_runtime::{GlueProgram, Task};
use std::io;

/// Sentinel depth for "safe at any depth" (no delay arc constrains it).
pub const UNBOUNDED: u32 = u32::MAX;

/// Why a buffer's safe pipeline depth is what it is.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DepthLimit {
    /// Same-iteration arc: any ring depth reproduces lock-step semantics.
    Unbounded,
    /// `delay` arc not on a cycle: a cross-iteration write-after-read
    /// hazard at every depth >= 2 caps the buffer at lock-step.
    Hazard {
        /// The arc's iteration delay.
        delay: u32,
    },
    /// `delay` arc closing a feedback cycle: the cycle serialises
    /// iterations, capping the buffer at lock-step.
    Cycle {
        /// Function names around the cycle, first repeated last
        /// (`m -> fbd -> m`).
        path: Vec<String>,
    },
    /// The race pass proved the buffer's ordering depends on the lock-step
    /// iteration boundary (`SAGE072`): pipelining removes that boundary,
    /// capping the buffer at lock-step.
    Race,
}

impl DepthLimit {
    /// Compact single-token encoding used by the text codec and the CLI
    /// table: `ok`, `delay:<k>`, or `cycle:<a->b->a>`.
    pub fn encode(&self) -> String {
        match self {
            DepthLimit::Unbounded => "ok".into(),
            DepthLimit::Hazard { delay } => format!("delay:{delay}"),
            DepthLimit::Cycle { path } => format!("cycle:{}", path.join("->")),
            DepthLimit::Race => "race".into(),
        }
    }

    fn decode(s: &str) -> Option<DepthLimit> {
        if s == "ok" {
            return Some(DepthLimit::Unbounded);
        }
        if s == "race" {
            return Some(DepthLimit::Race);
        }
        if let Some(k) = s.strip_prefix("delay:") {
            return Some(DepthLimit::Hazard {
                delay: k.parse().ok()?,
            });
        }
        if let Some(p) = s.strip_prefix("cycle:") {
            return Some(DepthLimit::Cycle {
                path: p.split("->").map(str::to_owned).collect(),
            });
        }
        None
    }
}

/// One buffer's entry in the pipeline plan.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BufferDepth {
    /// Logical buffer id.
    pub buffer: u32,
    /// Largest pipeline depth proven safe for this buffer
    /// ([`UNBOUNDED`] when nothing constrains it).
    pub safe_depth: u32,
    /// Why.
    pub limit: DepthLimit,
}

/// The proven pipeline-safety artifact for one generated program.
#[derive(Clone, Debug, PartialEq)]
pub struct PipelinePlan {
    /// Application model name.
    pub app_name: String,
    /// Node count the program was generated for.
    pub nodes: u32,
    /// Per-buffer proofs, in buffer-id order.
    pub buffers: Vec<BufferDepth>,
    /// Minimum over the per-buffer caps ([`UNBOUNDED`] if no delay arcs).
    pub hazard_depth: u32,
    /// Deepest ring that fits every node's DRAM, from the same live-range
    /// walk as `SAGE055` scaled by depth ([`UNBOUNDED`] if no node holds
    /// live bytes).
    pub mem_depth: u32,
    /// The overall proof: `min(hazard_depth, mem_depth)`, never below 1.
    pub safe_depth: u32,
}

/// Renders a depth with the [`UNBOUNDED`] sentinel spelled out.
pub fn depth_str(d: u32) -> String {
    if d == UNBOUNDED {
        "unbounded".into()
    } else {
        d.to_string()
    }
}

fn depth_parse(s: &str) -> Option<u32> {
    if s == "unbounded" {
        Some(UNBOUNDED)
    } else {
        s.parse().ok()
    }
}

impl PipelinePlan {
    /// Serialises the plan to the line-oriented `sage-pipeline/v1` format.
    pub fn to_text(&self) -> String {
        let mut out = String::from("sage-pipeline/v1\n");
        out.push_str(&format!("app={}\n", self.app_name));
        out.push_str(&format!("nodes={}\n", self.nodes));
        out.push_str(&format!("hazard_depth={}\n", depth_str(self.hazard_depth)));
        out.push_str(&format!("mem_depth={}\n", depth_str(self.mem_depth)));
        out.push_str(&format!("safe_depth={}\n", depth_str(self.safe_depth)));
        for b in &self.buffers {
            out.push_str(&format!(
                "buffer={},{},{}\n",
                b.buffer,
                depth_str(b.safe_depth),
                b.limit.encode()
            ));
        }
        out
    }

    /// Parses the `sage-pipeline/v1` format back into a plan.
    pub fn from_text(text: &str) -> io::Result<PipelinePlan> {
        let bad = |line: &str| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("malformed pipeline plan line: {line}"),
            )
        };
        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        if lines.next() != Some("sage-pipeline/v1") {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "not a sage-pipeline/v1 file",
            ));
        }
        let mut plan = PipelinePlan {
            app_name: String::new(),
            nodes: 0,
            buffers: Vec::new(),
            hazard_depth: UNBOUNDED,
            mem_depth: UNBOUNDED,
            safe_depth: UNBOUNDED,
        };
        for line in lines {
            let (key, value) = line.split_once('=').ok_or_else(|| bad(line))?;
            match key {
                "app" => plan.app_name = value.to_owned(),
                "nodes" => plan.nodes = value.parse().map_err(|_| bad(line))?,
                "hazard_depth" => {
                    plan.hazard_depth = depth_parse(value).ok_or_else(|| bad(line))?
                }
                "mem_depth" => plan.mem_depth = depth_parse(value).ok_or_else(|| bad(line))?,
                "safe_depth" => plan.safe_depth = depth_parse(value).ok_or_else(|| bad(line))?,
                "buffer" => {
                    let mut parts = value.splitn(3, ',');
                    let (Some(id), Some(depth), Some(limit)) =
                        (parts.next(), parts.next(), parts.next())
                    else {
                        return Err(bad(line));
                    };
                    plan.buffers.push(BufferDepth {
                        buffer: id.parse().map_err(|_| bad(line))?,
                        safe_depth: depth_parse(depth).ok_or_else(|| bad(line))?,
                        limit: DepthLimit::decode(limit).ok_or_else(|| bad(line))?,
                    });
                }
                _ => return Err(bad(line)),
            }
        }
        Ok(plan)
    }

    /// Hand-rolled JSON rendering (`UNBOUNDED` depths become `null`).
    pub fn to_json(&self) -> String {
        let esc = |s: &str| s.replace('\\', "\\\\").replace('"', "\\\"");
        let depth_json = |d: u32| {
            if d == UNBOUNDED {
                "null".to_owned()
            } else {
                d.to_string()
            }
        };
        let buffers: Vec<String> = self
            .buffers
            .iter()
            .map(|b| {
                format!(
                    "{{\"buffer\":{},\"safe_depth\":{},\"limit\":\"{}\"}}",
                    b.buffer,
                    depth_json(b.safe_depth),
                    esc(&b.limit.encode())
                )
            })
            .collect();
        format!(
            "{{\"app\":\"{}\",\"nodes\":{},\"hazard_depth\":{},\"mem_depth\":{},\
             \"safe_depth\":{},\"buffers\":[{}]}}",
            esc(&self.app_name),
            self.nodes,
            depth_json(self.hazard_depth),
            depth_json(self.mem_depth),
            depth_json(self.safe_depth),
            buffers.join(",")
        )
    }
}

/// Shortest function-level path `from ⇝ to` over the buffer dataflow
/// edges, as function names (BFS; used to report the cycle a delay arc
/// closes: `to --delay--> from ⇝ to`).
fn path_between(program: &GlueProgram, from: u32, to: u32) -> Option<Vec<String>> {
    let nf = program.functions.len();
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); nf];
    for b in &program.buffers {
        adj[b.producer as usize].push(b.consumer);
    }
    let mut parent: Vec<Option<u32>> = vec![None; nf];
    let mut queue = std::collections::VecDeque::from([from]);
    let mut seen = vec![false; nf];
    seen[from as usize] = true;
    while let Some(f) = queue.pop_front() {
        if f == to {
            let mut path = vec![to];
            let mut cur = to;
            while cur != from {
                cur = parent[cur as usize].expect("BFS parent chain");
                path.push(cur);
            }
            path.reverse();
            return Some(
                path.into_iter()
                    .map(|f| program.functions[f as usize].name.clone())
                    .collect(),
            );
        }
        for &n in &adj[f as usize] {
            if !seen[n as usize] {
                seen[n as usize] = true;
                parent[n as usize] = Some(f);
                queue.push_back(n);
            }
        }
    }
    None
}

/// Proves the per-buffer and overall safe pipeline depths for a
/// structurally valid program. `race_capped` lists the buffers the race
/// pass proved depth-conditional (`SAGE072`); each is capped at lock-step
/// with [`DepthLimit::Race`] unless a delay hazard already caps it. Pure
/// analysis — no diagnostics; see [`check`] for the reporting pass.
pub fn analyze(
    program: &GlueProgram,
    hw: &HardwareSpec,
    plans: &BufferPlans,
    race_capped: &[u32],
) -> PipelinePlan {
    let mut buffers = Vec::with_capacity(program.buffers.len());
    let mut hazard_depth = UNBOUNDED;
    for b in &program.buffers {
        let (safe_depth, limit) = if b.delay == 0 && race_capped.contains(&b.id) {
            (1, DepthLimit::Race)
        } else if b.delay == 0 {
            (UNBOUNDED, DepthLimit::Unbounded)
        } else if let Some(mut path) = path_between(program, b.consumer, b.producer) {
            // Close the cycle through the delay arc itself.
            path.push(program.functions[b.consumer as usize].name.clone());
            (1, DepthLimit::Cycle { path })
        } else {
            (1, DepthLimit::Hazard { delay: b.delay })
        };
        hazard_depth = hazard_depth.min(safe_depth);
        buffers.push(BufferDepth {
            buffer: b.id,
            safe_depth,
            limit,
        });
    }

    let caps = hw.capacities();
    let mut mem_depth = UNBOUNDED;
    for (node, (peak, _)) in memory::node_peaks(program, plans).into_iter().enumerate() {
        if peak == 0 {
            continue;
        }
        let fits = (caps[node].mem_bytes / peak as f64).floor();
        let node_depth = if fits >= UNBOUNDED as f64 {
            UNBOUNDED
        } else {
            (fits as u32).max(1)
        };
        mem_depth = mem_depth.min(node_depth);
    }

    PipelinePlan {
        app_name: program.app_name.clone(),
        nodes: program.node_count() as u32,
        buffers,
        hazard_depth,
        mem_depth,
        safe_depth: hazard_depth.min(mem_depth).max(1),
    }
}

/// The node whose DRAM bounds the pipeline depth, with its lock-step peak
/// bytes and capacity.
fn limiting_node(
    program: &GlueProgram,
    hw: &HardwareSpec,
    plans: &BufferPlans,
) -> Option<(usize, usize, f64)> {
    let caps = hw.capacities();
    memory::node_peaks(program, plans)
        .into_iter()
        .enumerate()
        .filter(|&(_, (peak, _))| peak > 0)
        .map(|(node, (peak, _))| (node, peak, caps[node].mem_bytes))
        .min_by(|a, b| {
            (a.2 / a.1 as f64)
                .partial_cmp(&(b.2 / b.1 as f64))
                .unwrap_or(std::cmp::Ordering::Equal)
        })
}

/// Runs the pipeline-safety pass: proves the [`PipelinePlan`] and reports
/// `SAGE060` (cross-iteration WAR hazard), `SAGE061` (feedback cycle
/// forces lock-step), and `SAGE062` (depth-infeasible memory: `requested`
/// — or even double-buffering — does not fit the hardware model's DRAM).
#[allow(clippy::too_many_arguments)]
pub fn check(
    program: &GlueProgram,
    hw: &HardwareSpec,
    plans: &BufferPlans,
    race_capped: &[u32],
    requested: Option<u32>,
    spans: Option<&ModelSpans>,
    diags: &mut Diagnostics,
) -> PipelinePlan {
    let plan = analyze(program, hw, plans, race_capped);

    for (idx, bd) in plan.buffers.iter().enumerate() {
        let b = &program.buffers[idx];
        let label = buffer_label(program, b.id);
        // Name one concrete endpoint pair: the first planned stripe.
        let (pi, cj) = plans[idx]
            .as_ref()
            .and_then(|p| {
                p.pairs.iter().enumerate().find_map(|(i, row)| {
                    row.iter()
                        .position(|iv| !iv.is_empty())
                        .map(|j| (i as u32, j as u32))
                })
            })
            .unwrap_or((0, 0));
        let producer = program.task_path(Task {
            fn_id: b.producer,
            thread: pi,
        });
        let consumer = program.task_path(Task {
            fn_id: b.consumer,
            thread: cj,
        });
        let span = spans.and_then(|s| {
            s.block(&program.functions[b.producer as usize].name)
                .or_else(|| s.block(&program.functions[b.consumer as usize].name))
        });
        match &bd.limit {
            // Race caps carry their own `SAGE072` from the race pass.
            DepthLimit::Unbounded | DepthLimit::Race => {}
            DepthLimit::Hazard { delay } => diags.push(
                Diagnostic::warning(
                    "SAGE060",
                    format!(
                        "cross-iteration write-after-read hazard on {label}: \
                         with two or more iterations in flight, {producer} \
                         overwrites the `delay {delay}` ring slot before \
                         {consumer} drains the earlier iteration's payload"
                    ),
                )
                .with_note(
                    "the pipeline pass caps this buffer's safe depth at 1 \
                     (lock-step); deeper runs corrupt silently or fail as \
                     TransferFailed",
                )
                .with_span_opt(span),
            ),
            DepthLimit::Cycle { path } => diags.push(
                Diagnostic::warning(
                    "SAGE061",
                    format!(
                        "feedback cycle `{}` forces lock-step execution: \
                         {label} carries `delay {}` state around the cycle, \
                         so iteration i+1 cannot enter the pipeline before \
                         iteration i retires",
                        path.join(" -> "),
                        b.delay
                    ),
                )
                .with_note(format!(
                    "delay arc endpoints: {producer} -> {consumer}; safe \
                     pipeline depth is 1"
                ))
                .with_span_opt(span),
            ),
        }
    }

    let infeasible = match requested {
        Some(want) => want > plan.mem_depth,
        // Unrequested: flag programs that fit lock-step but cannot even
        // double-buffer (a lock-step overflow is already `SAGE055`).
        None => plan.mem_depth < 2 && plan.hazard_depth >= 2,
    };
    if infeasible {
        if let Some((node, peak, cap)) = limiting_node(program, hw, plans) {
            if (peak as f64) <= cap {
                let want = requested.unwrap_or(2);
                let sched = &program.schedules[node];
                let peak_slot = memory::node_peaks(program, plans)[node].1;
                let fname = sched
                    .get(peak_slot)
                    .map(|t| program.functions[t.fn_id as usize].name.as_str());
                diags.push(
                    Diagnostic::warning(
                        "SAGE062",
                        format!(
                            "pipeline depth {want} is memory-infeasible: node \
                             {node}'s predicted lock-step peak of {peak} live \
                             bytes scales to ~{} bytes of {want}-slot rings, \
                             exceeding the hardware model's {cap:.0} bytes of \
                             DRAM",
                            peak.saturating_mul(want as usize)
                        ),
                    )
                    .with_note(format!(
                        "the deepest ring that fits every node is depth {}",
                        depth_str(plan.mem_depth)
                    ))
                    .with_span_opt(spans.and_then(|s| fname.and_then(|f| s.block(f)))),
                );
            }
        }
    }

    plan
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> PipelinePlan {
        PipelinePlan {
            app_name: "demo".into(),
            nodes: 4,
            buffers: vec![
                BufferDepth {
                    buffer: 0,
                    safe_depth: UNBOUNDED,
                    limit: DepthLimit::Unbounded,
                },
                BufferDepth {
                    buffer: 1,
                    safe_depth: 1,
                    limit: DepthLimit::Hazard { delay: 2 },
                },
                BufferDepth {
                    buffer: 2,
                    safe_depth: 1,
                    limit: DepthLimit::Cycle {
                        path: vec!["m".into(), "fbd".into(), "m".into()],
                    },
                },
                BufferDepth {
                    buffer: 3,
                    safe_depth: 1,
                    limit: DepthLimit::Race,
                },
            ],
            hazard_depth: 1,
            mem_depth: 7,
            safe_depth: 1,
        }
    }

    #[test]
    fn text_codec_round_trips() {
        let p = plan();
        let text = p.to_text();
        assert!(text.starts_with("sage-pipeline/v1\n"));
        assert_eq!(PipelinePlan::from_text(&text).unwrap(), p);
    }

    #[test]
    fn from_text_rejects_garbage() {
        assert!(PipelinePlan::from_text("nonsense").is_err());
        assert!(PipelinePlan::from_text("sage-pipeline/v1\nbuffer=0").is_err());
        assert!(PipelinePlan::from_text("sage-pipeline/v1\nbuffer=0,9,what:ever").is_err());
    }

    #[test]
    fn json_spells_unbounded_as_null() {
        let j = plan().to_json();
        assert!(j.contains("\"hazard_depth\":1"));
        assert!(j.contains("\"safe_depth\":null"), "{j}");
        assert!(j.contains("cycle:m->fbd->m"));
    }
}
