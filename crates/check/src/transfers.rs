//! Cross-rank transfer matching.
//!
//! Walks every node's schedule exactly the way the executor does and
//! records, per `(buffer, producer thread, consumer thread)` tag key, who
//! sends and who receives. In a correct program every non-empty plan pair
//! has exactly one sender and one receiver, the byte counts agree, and a
//! same-node hand-off is produced strictly before it is consumed (the
//! executor's local hand-off store has no other ordering). Everything else
//! is a `SAGE050`/`SAGE051`, reported with both endpoints' task paths.

use crate::{buffer_label, BufferPlans};
use sage_lint::{Diagnostic, Diagnostics, ModelSpans};
use sage_runtime::{GlueProgram, Task};
use std::collections::BTreeMap;

/// One transfer endpoint: the task, where it is scheduled, and how many
/// bytes it moves.
#[derive(Clone, Copy, Debug)]
struct Endpoint {
    task: Task,
    node: u32,
    slot: usize,
    bytes: usize,
}

/// (buffer, src thread, dst thread) -> (senders, receivers). BTreeMap
/// keeps reporting order deterministic.
type Ledger = BTreeMap<(u32, u32, u32), (Vec<Endpoint>, Vec<Endpoint>)>;

/// Matches every send against every receive over the planned
/// redistributions.
pub fn check(
    program: &GlueProgram,
    plans: &BufferPlans,
    spans: Option<&ModelSpans>,
    diags: &mut Diagnostics,
) {
    let mut ledger: Ledger = BTreeMap::new();
    for (node, sched) in program.schedules.iter().enumerate() {
        for (slot, &task) in sched.iter().enumerate() {
            let f = &program.functions[task.fn_id as usize];
            let tid = task.thread as usize;
            let at = |bytes: usize| Endpoint {
                task,
                node: node as u32,
                slot,
                bytes,
            };
            // Receives: one per producer thread with a non-empty pair, just
            // like the executor's input assembly.
            for &bid in &f.inputs {
                let Some(plan) = &plans[bid as usize] else {
                    continue;
                };
                for (i, row) in plan.pairs.iter().enumerate() {
                    let Some(intervals) = row.get(tid) else {
                        continue; // foreign consumer beyond the plan's width
                    };
                    if intervals.is_empty() {
                        continue;
                    }
                    let bytes: usize = intervals.iter().map(|(s, e)| e - s).sum();
                    ledger
                        .entry((bid, i as u32, task.thread))
                        .or_default()
                        .1
                        .push(at(bytes));
                }
            }
            // Sends: one per consumer thread with a non-empty pair, just
            // like the executor's output emission.
            for &bid in &f.outputs {
                let Some(plan) = &plans[bid as usize] else {
                    continue;
                };
                let Some(row) = plan.pairs.get(tid) else {
                    continue; // foreign producer beyond the plan's width
                };
                for (j, intervals) in row.iter().enumerate() {
                    if intervals.is_empty() {
                        continue;
                    }
                    let bytes: usize = intervals.iter().map(|(s, e)| e - s).sum();
                    ledger
                        .entry((bid, task.thread, j as u32))
                        .or_default()
                        .0
                        .push(at(bytes));
                }
            }
        }
    }

    for ((bid, i, j), (sends, recvs)) in &ledger {
        let label = buffer_label(program, *bid);
        let b = &program.buffers[*bid as usize];
        let span = spans.and_then(|s| {
            s.block(&program.functions[b.producer as usize].name)
                .or_else(|| s.block(&program.functions[b.consumer as usize].name))
        });
        let paths = |eps: &[Endpoint]| -> String {
            eps.iter()
                .map(|e| program.task_path(e.task))
                .collect::<Vec<_>>()
                .join(", ")
        };
        if sends.len() > 1 || recvs.len() > 1 {
            let (what, eps) = if sends.len() > 1 {
                ("sent", sends)
            } else {
                ("received", recvs)
            };
            diags.push(
                Diagnostic::error(
                    "SAGE051",
                    format!(
                        "transfer tag collision on {label}, stripe {i}->{j}: \
                         {what} by {} tasks ({})",
                        eps.len(),
                        paths(eps)
                    ),
                )
                .with_note(
                    "the runtime's tagged mailbox would deliver the wrong message to one of them",
                )
                .with_span_opt(span),
            );
            continue;
        }
        match (sends.first(), recvs.first()) {
            (Some(s), None) => {
                let intended = Task {
                    fn_id: b.consumer,
                    thread: *j,
                };
                diags.push(
                    Diagnostic::error(
                        "SAGE050",
                        format!(
                            "stripe {i}->{j} of {label} is sent by {} but never \
                             received; the intended receiver is {}",
                            program.task_path(s.task),
                            program.task_path(intended)
                        ),
                    )
                    .with_note(
                        "the message would sit in the mailbox forever and the consumer reads zeros",
                    )
                    .with_span_opt(span),
                );
            }
            (None, Some(r)) => {
                let intended = Task {
                    fn_id: b.producer,
                    thread: *i,
                };
                diags.push(
                    Diagnostic::error(
                        "SAGE050",
                        format!(
                            "{} waits for stripe {i}->{j} of {label} that no \
                             task sends; the intended sender is {}",
                            program.task_path(r.task),
                            program.task_path(intended)
                        ),
                    )
                    .with_note("at run time the receive blocks forever (or the local hand-off fails as TransferFailed)")
                    .with_span_opt(span),
                );
            }
            (Some(s), Some(r)) => {
                if s.bytes != r.bytes {
                    diags.push(
                        Diagnostic::error(
                            "SAGE051",
                            format!(
                                "stripe {i}->{j} of {label}: {} sends {} bytes \
                                 but {} expects {}",
                                program.task_path(s.task),
                                s.bytes,
                                program.task_path(r.task),
                                r.bytes
                            ),
                        )
                        .with_span_opt(span),
                    );
                } else if s.node == r.node && r.slot <= s.slot && b.delay == 0 {
                    // `delay` arcs are exempt: their consumer legally
                    // precedes their producer in the schedule because it
                    // reads the payload emitted `delay` iterations earlier
                    // (zeros on the first iterations).
                    diags.push(
                        Diagnostic::error(
                            "SAGE050",
                            format!(
                                "same-node hand-off of {label}, stripe \
                                 {i}->{j}, is consumed by {} before {} produces \
                                 it",
                                program.task_path(r.task),
                                program.task_path(s.task)
                            ),
                        )
                        .with_note(
                            "node schedules run in order; at run time this \
                             fails as a missing hand-off (TransferFailed)",
                        )
                        .with_span_opt(span),
                    );
                }
            }
            (None, None) => {}
        }
    }
}
