//! Per-node capacity feasibility: memory high-water-mark and bandwidth.
//!
//! Walks each node's schedule over one symbolic iteration under the
//! shared-buffer scheme (the documented lower bound on any scheme): a
//! task's working set is its input and output stripes, and a same-node
//! hand-off stays live from the slot that produces it to the slot that
//! consumes it. The peak of that walk against the hardware model's DRAM is
//! `SAGE055`; the per-iteration wire time of a node's off-node
//! redistribution traffic against the link capacities is `SAGE056`.

use crate::{buffer_label, BufferPlans};
use sage_lint::{Diagnostic, Diagnostics, ModelSpans};
use sage_model::HardwareSpec;
use sage_runtime::{GlueProgram, Layout};
use std::collections::HashMap;

/// Per-iteration wire-time budget per node. A node whose redistribution
/// traffic alone takes longer than this per data set cannot meet any
/// real-time rate the paper's applications run at; the fabric, not
/// computation, is the bound.
pub const COMM_FEASIBLE_SECS: f64 = 0.1;

/// Per-node predicted memory high-water marks: for each node, the peak
/// live bytes over its schedule and the slot where the peak occurs.
///
/// The walk is the one documented on this module: a task's working set is
/// its input and output stripes, and a same-node hand-off stays live from
/// the slot that produces it to the slot that consumes it. The figure is a
/// lower bound for any buffer scheme — which is exactly why the executor's
/// measured `mem_high_water` must never exceed it.
pub(crate) fn node_peaks(program: &GlueProgram, plans: &BufferPlans) -> Vec<(usize, usize)> {
    // Same-node hand-off live ranges: node -> (producer slot, consumer
    // slot, bytes).
    let mut handoffs: Vec<Vec<(usize, usize, usize)>> = vec![Vec::new(); program.node_count()];
    // `delay` arcs cross the iteration boundary: their payloads stay live
    // from one iteration into the next, so they are resident at every slot
    // (a d-deep delay keeps d payloads in flight at once).
    let mut resident: Vec<usize> = vec![0; program.node_count()];
    let slot_of: HashMap<(u32, u32), (usize, usize)> = program
        .schedules
        .iter()
        .enumerate()
        .flat_map(|(node, sched)| {
            sched
                .iter()
                .enumerate()
                .map(move |(slot, t)| ((t.fn_id, t.thread), (node, slot)))
        })
        .collect();
    for (bid, plan) in plans.iter().enumerate() {
        let Some(plan) = plan else { continue };
        let b = &program.buffers[bid];
        let pf = &program.functions[b.producer as usize];
        let cf = &program.functions[b.consumer as usize];
        for (i, row) in plan.pairs.iter().enumerate() {
            for (j, intervals) in row.iter().enumerate() {
                if intervals.is_empty() {
                    continue;
                }
                let bytes: usize = intervals.iter().map(|(s, e)| e - s).sum();
                let src_node = pf.placement[i] as usize;
                let dst_node = cf.placement[j] as usize;
                if src_node == dst_node {
                    if b.delay > 0 {
                        resident[src_node] += bytes * b.delay as usize;
                        continue;
                    }
                    let (Some(&(_, ps)), Some(&(_, cs))) = (
                        slot_of.get(&(b.producer, i as u32)),
                        slot_of.get(&(b.consumer, j as u32)),
                    ) else {
                        continue;
                    };
                    handoffs[src_node].push((ps, cs, bytes));
                }
            }
        }
    }

    program
        .schedules
        .iter()
        .enumerate()
        .map(|(node, sched)| {
            let mut peak = 0usize;
            let mut peak_slot = 0usize;
            for (slot, &task) in sched.iter().enumerate() {
                let f = &program.functions[task.fn_id as usize];
                let tid = task.thread as usize;
                let mut live = resident[node];
                for &bid in f.inputs.iter() {
                    if let Some(plan) = &plans[bid as usize] {
                        live += plan.dst.get(tid).map(Layout::len).unwrap_or(0);
                    }
                }
                for &bid in f.outputs.iter() {
                    if let Some(plan) = &plans[bid as usize] {
                        live += plan.src.get(tid).map(Layout::len).unwrap_or(0);
                    }
                }
                for &(ps, cs, bytes) in &handoffs[node] {
                    if ps < slot && slot < cs {
                        live += bytes;
                    }
                }
                if live > peak {
                    peak = live;
                    peak_slot = slot;
                }
            }
            (peak, peak_slot)
        })
        .collect()
}

/// Checks per-node memory high-water-marks (`SAGE055`) and bandwidth
/// feasibility (`SAGE056`) against the hardware model.
pub fn check(
    program: &GlueProgram,
    hw: &HardwareSpec,
    plans: &BufferPlans,
    spans: Option<&ModelSpans>,
    diags: &mut Diagnostics,
) {
    let caps = hw.capacities();
    let flat = hw.flatten();

    // Cross-node wire seconds and bytes charged to every node the link
    // touches.
    let mut wire_secs = vec![0.0f64; program.node_count()];
    let mut wire_bytes = vec![0usize; program.node_count()];

    for (bid, plan) in plans.iter().enumerate() {
        let Some(plan) = plan else { continue };
        let b = &program.buffers[bid];
        let pf = &program.functions[b.producer as usize];
        let cf = &program.functions[b.consumer as usize];
        for (i, row) in plan.pairs.iter().enumerate() {
            for (j, intervals) in row.iter().enumerate() {
                if intervals.is_empty() {
                    continue;
                }
                let bytes: usize = intervals.iter().map(|(s, e)| e - s).sum();
                let src_node = pf.placement[i] as usize;
                let dst_node = cf.placement[j] as usize;
                if src_node != dst_node {
                    let secs = hw
                        .link_between(&flat[src_node], &flat[dst_node])
                        .transfer_secs(bytes);
                    for node in [src_node, dst_node] {
                        wire_secs[node] += secs;
                        wire_bytes[node] += bytes;
                    }
                }
            }
        }
    }

    let peaks = node_peaks(program, plans);
    for (node, sched) in program.schedules.iter().enumerate() {
        if sched.is_empty() {
            continue;
        }
        let (peak, peak_slot) = peaks[node];
        let cap = caps[node].mem_bytes;
        if peak as f64 > cap {
            let at = program.task_path(sched[peak_slot]);
            let fname = &program.functions[sched[peak_slot].fn_id as usize].name;
            diags.push(
                Diagnostic::error(
                    "SAGE055",
                    format!(
                        "node {node}: peak live buffer bytes ({peak}) exceed \
                         the hardware model's {:.0} bytes of DRAM",
                        cap
                    ),
                )
                .with_note(format!("high-water mark while executing {at}"))
                .with_note(
                    "counted as task working stripes plus pending same-node \
                     hand-offs over one iteration (a lower bound for any \
                     buffer scheme)",
                )
                .with_span_opt(spans.and_then(|s| s.block(fname))),
            );
        }
    }

    for node in 0..program.node_count() {
        if wire_secs[node] > COMM_FEASIBLE_SECS {
            // Name the heaviest buffer through this node to point somewhere
            // actionable.
            let heaviest = heaviest_buffer(program, plans, node);
            let mut d = Diagnostic::warning(
                "SAGE056",
                format!(
                    "node {node}: estimated per-iteration redistribution wire \
                     time {:.3} s ({} bytes on and off the node) exceeds the \
                     {COMM_FEASIBLE_SECS} s feasibility budget",
                    wire_secs[node], wire_bytes[node]
                ),
            )
            .with_note(
                "the fabric, not computation, bounds the achievable iteration \
                 rate; restripe or re-place to keep traffic on-node",
            );
            if let Some(bid) = heaviest {
                d = d.with_note(format!(
                    "largest contributor: {}",
                    buffer_label(program, bid)
                ));
            }
            diags.push(d);
        }
    }
}

/// The buffer moving the most cross-node bytes through `node`, if any.
fn heaviest_buffer(program: &GlueProgram, plans: &BufferPlans, node: usize) -> Option<u32> {
    let mut best: Option<(usize, u32)> = None;
    for (bid, plan) in plans.iter().enumerate() {
        let Some(plan) = plan else { continue };
        let b = &program.buffers[bid];
        let pf = &program.functions[b.producer as usize];
        let cf = &program.functions[b.consumer as usize];
        let mut bytes = 0usize;
        for (i, row) in plan.pairs.iter().enumerate() {
            for (j, intervals) in row.iter().enumerate() {
                let src = pf.placement[i] as usize;
                let dst = cf.placement[j] as usize;
                if src != dst && (src == node || dst == node) {
                    bytes += intervals.iter().map(|(s, e)| e - s).sum::<usize>();
                }
            }
        }
        if bytes > 0 && best.map(|(b0, _)| bytes > b0).unwrap_or(true) {
            best = Some((bytes, bid as u32));
        }
    }
    best.map(|(_, bid)| bid)
}
