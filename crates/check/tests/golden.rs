//! Golden-file tests: the exact rendered output for each stable `SAGE05x`
//! code the abstract interpreter produces on hand-built glue programs.
//! Model-source-level goldens (driving `sage check` end to end) live in the
//! workspace-level test suite because they need the `sage-core` front end.
//!
//! Regenerate after an intentional rendering change with
//! `UPDATE_GOLDEN=1 cargo test -p sage-check --test golden`.

use sage_check::check_program;
use sage_model::{HardwareShelf, Properties, Striping};
use sage_runtime::{FnRole, FunctionDescriptor, GlueProgram, LogicalBufferDesc, Task};

fn fixture_path(name: &str) -> String {
    format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"))
}

/// Compares `actual` against the committed `<name>.expected`; with
/// `UPDATE_GOLDEN` set, (re)writes the fixture instead.
fn check_golden(name: &str, actual: &str) {
    let path = fixture_path(&format!("{name}.expected"));
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("{path}: {e} (run with UPDATE_GOLDEN=1 to create)"));
    assert_eq!(
        actual, expected,
        "rendered output for `{name}` drifted from its golden file; \
         if intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

/// Checks `program` against a cspi machine of its own node count and
/// golden-checks the rendering; every fixture must actually contain
/// `expect_code`.
fn check_program_golden(name: &str, program: &GlueProgram, expect_code: &str) {
    let hw = HardwareShelf::cspi_with_nodes(program.node_count());
    let mut diags = check_program(program, &hw, None);
    diags.sort();
    assert!(
        diags.diags.iter().any(|d| d.code == expect_code),
        "{name}: expected {expect_code}, got {:?}",
        diags.diags
    );
    check_golden(name, &diags.render("golden.glue", None));
}

#[allow(clippy::too_many_arguments)]
fn descriptor(
    id: u32,
    name: &str,
    function: &str,
    role: FnRole,
    threads: u32,
    placement: Vec<u32>,
    inputs: Vec<u32>,
    outputs: Vec<u32>,
) -> FunctionDescriptor {
    FunctionDescriptor {
        id,
        name: name.into(),
        function: function.into(),
        role,
        threads,
        placement,
        flops: 0.0,
        mem_bytes: 0.0,
        inputs,
        outputs,
        params: Properties::new(),
    }
}

fn buffer(id: u32, producer: u32, consumer: u32, shape: Vec<usize>) -> LogicalBufferDesc {
    LogicalBufferDesc {
        id,
        producer,
        producer_port: "out".into(),
        consumer,
        consumer_port: "in".into(),
        shape,
        elem_bytes: 8,
        send_striping: Striping::BY_ROWS,
        recv_striping: Striping::BY_ROWS,
        delay: 0,
    }
}

fn t(fn_id: u32, thread: u32) -> Task {
    Task { fn_id, thread }
}

/// A two-stage pipeline (src -> snk, two threads each, one thread per
/// node) that checks completely clean: the mutation base for every broken
/// fixture.
fn two_stage() -> GlueProgram {
    GlueProgram {
        app_name: "golden".into(),
        functions: vec![
            descriptor(
                0,
                "src",
                "test.fill",
                FnRole::Source,
                2,
                vec![0, 1],
                vec![],
                vec![0],
            ),
            descriptor(
                1,
                "snk",
                "sink.null",
                FnRole::Sink,
                2,
                vec![0, 1],
                vec![0],
                vec![],
            ),
        ],
        buffers: vec![buffer(0, 0, 1, vec![4, 4])],
        schedules: vec![vec![t(0, 0), t(1, 0)], vec![t(0, 1), t(1, 1)]],
    }
}

#[test]
fn baseline_two_stage_checks_clean() {
    let program = two_stage();
    let hw = HardwareShelf::cspi_with_nodes(2);
    let diags = check_program(&program, &hw, None);
    assert!(diags.is_empty(), "{:?}", diags.diags);
}

#[test]
fn sage050_handoff_out_of_order() {
    // Node 1 consumes the same-node hand-off before producing it: the exact
    // program that dies at run time with TransferFailed (attempts: 0).
    let mut program = two_stage();
    program.schedules[1].reverse();
    check_program_golden("sage050_handoff_out_of_order", &program, "SAGE050");
}

#[test]
fn sage050_no_sender() {
    // The producer no longer emits the buffer; both consumer threads wait
    // for stripes nothing sends.
    let mut program = two_stage();
    program.functions[0].outputs.clear();
    check_program_golden("sage050_no_sender", &program, "SAGE050");
}

#[test]
fn sage051_duplicate_send() {
    // A second source claims the same output buffer: every stripe tag is
    // sent twice (SAGE051) and the function table has a double-write
    // (SAGE053).
    let mut program = two_stage();
    program.functions.push(descriptor(
        2,
        "src2",
        "test.fill",
        FnRole::Source,
        2,
        vec![0, 1],
        vec![],
        vec![0],
    ));
    program.schedules[0].insert(0, t(2, 0));
    program.schedules[1].insert(0, t(2, 1));
    check_program_golden("sage051_duplicate_send", &program, "SAGE051");
}

#[test]
fn sage052_foreign_input() {
    // A third function reads a buffer routed to someone else: a
    // use-before-init (SAGE052), and its receives collide with the real
    // consumer's transfer tags (SAGE051).
    let mut program = two_stage();
    program.functions.push(descriptor(
        2,
        "spy",
        "sink.null",
        FnRole::Sink,
        2,
        vec![0, 1],
        vec![0],
        vec![],
    ));
    program.schedules[0].push(t(2, 0));
    program.schedules[1].push(t(2, 1));
    check_program_golden("sage052_foreign_input", &program, "SAGE052");
}

#[test]
fn sage053_double_write() {
    // The sink also lists the buffer as an output: one writer too many.
    let mut program = two_stage();
    program.functions[1].outputs.push(0);
    check_program_golden("sage053_double_write", &program, "SAGE053");
}

#[test]
fn sage054_degenerate_payload() {
    let mut program = two_stage();
    program.buffers[0].shape = vec![0, 4];
    check_program_golden("sage054_degenerate_payload", &program, "SAGE054");
}

#[test]
fn sage054_kernel_contract() {
    // A three-stage pipeline whose FFT stage gets 12-sample rows: 12 is not
    // a power of two, so Fft1d::new would panic at run time.
    let program = GlueProgram {
        app_name: "golden".into(),
        functions: vec![
            descriptor(
                0,
                "src",
                "test.fill",
                FnRole::Source,
                2,
                vec![0, 1],
                vec![],
                vec![0],
            ),
            descriptor(
                1,
                "fft",
                "isspl.fft_rows",
                FnRole::Compute,
                2,
                vec![0, 1],
                vec![0],
                vec![1],
            ),
            descriptor(
                2,
                "snk",
                "sink.null",
                FnRole::Sink,
                2,
                vec![0, 1],
                vec![1],
                vec![],
            ),
        ],
        buffers: vec![buffer(0, 0, 1, vec![4, 12]), buffer(1, 1, 2, vec![4, 12])],
        schedules: vec![
            vec![t(0, 0), t(1, 0), t(2, 0)],
            vec![t(0, 1), t(1, 1), t(2, 1)],
        ],
    };
    check_program_golden("sage054_kernel_contract", &program, "SAGE054");
}

#[test]
fn sage055_memory_high_water() {
    // A 134 MB matrix striped over two 64 MB nodes: 67 MB stripes cannot
    // fit either node's DRAM.
    let mut program = two_stage();
    program.buffers[0].shape = vec![4096, 4096];
    check_program_golden("sage055_memory_high_water", &program, "SAGE055");
}

#[test]
fn sage056_bandwidth_infeasible() {
    // One replicated 33 MB source fanned out to four nodes: over 0.2 s of
    // Myrinet wire time per iteration on every link.
    let program = GlueProgram {
        app_name: "golden".into(),
        functions: vec![
            descriptor(
                0,
                "src",
                "test.fill",
                FnRole::Source,
                1,
                vec![0],
                vec![],
                vec![0],
            ),
            descriptor(
                1,
                "snk",
                "sink.null",
                FnRole::Sink,
                4,
                vec![0, 1, 2, 3],
                vec![0],
                vec![],
            ),
        ],
        buffers: vec![{
            let mut b = buffer(0, 0, 1, vec![4096, 1024]);
            b.send_striping = Striping::Replicated;
            b.recv_striping = Striping::Replicated;
            b
        }],
        schedules: vec![
            vec![t(0, 0), t(1, 0)],
            vec![t(1, 1)],
            vec![t(1, 2)],
            vec![t(1, 3)],
        ],
    };
    check_program_golden("sage056_bandwidth_infeasible", &program, "SAGE056");
}

#[test]
fn sage057_tag_overflow() {
    // 1025 threads per function: thread indices no longer fit the tag's
    // 10-bit fields, so every transfer ledger entry would alias.
    let threads = 1025u32;
    let all = vec![0u32; threads as usize];
    let mut sched: Vec<Task> = (0..threads).map(|th| t(0, th)).collect();
    sched.extend((0..threads).map(|th| t(1, th)));
    let program = GlueProgram {
        app_name: "golden".into(),
        functions: vec![
            descriptor(
                0,
                "src",
                "test.fill",
                FnRole::Source,
                threads,
                all.clone(),
                vec![],
                vec![0],
            ),
            descriptor(
                1,
                "snk",
                "sink.null",
                FnRole::Sink,
                threads,
                all,
                vec![0],
                vec![],
            ),
        ],
        buffers: vec![{
            let mut b = buffer(0, 0, 1, vec![2050]);
            b.elem_bytes = 1;
            b
        }],
        schedules: vec![sched],
    };
    check_program_golden("sage057_tag_overflow", &program, "SAGE057");
}

#[test]
fn sage060_cross_iteration_hazard() {
    // The clean two-stage hand-off becomes a one-iteration delay arc: safe
    // in lock-step, but with two iterations in flight the producer
    // overwrites the single ring slot the consumer still has to drain.
    let mut program = two_stage();
    program.buffers[0].delay = 1;
    check_program_golden("sage060_cross_iteration_hazard", &program, "SAGE060");
}

#[test]
fn sage061_feedback_cycle() {
    // src -> m -> fbd -> m: the mixer consumes its own output of the
    // previous iteration, so the delay arc closes a cycle and the whole
    // program is pinned to lock-step execution.
    let program = GlueProgram {
        app_name: "golden".into(),
        functions: vec![
            descriptor(
                0,
                "src",
                "test.fill",
                FnRole::Source,
                2,
                vec![0, 1],
                vec![],
                vec![0],
            ),
            descriptor(
                1,
                "m",
                "workload.mix",
                FnRole::Compute,
                2,
                vec![0, 1],
                vec![0, 2],
                vec![1],
            ),
            descriptor(
                2,
                "fbd",
                "id",
                FnRole::Compute,
                2,
                vec![0, 1],
                vec![1],
                vec![2],
            ),
        ],
        buffers: vec![buffer(0, 0, 1, vec![4, 4]), buffer(1, 1, 2, vec![4, 4]), {
            let mut b = buffer(2, 2, 1, vec![4, 4]);
            b.consumer_port = "fb".into();
            b.delay = 1;
            b
        }],
        // The feedback-aware toposort schedules the consumer `m` before the
        // delay producer `fbd`: legal only because the arc reads last
        // iteration's payload.
        schedules: vec![
            vec![t(0, 0), t(1, 0), t(2, 0)],
            vec![t(0, 1), t(1, 1), t(2, 1)],
        ],
    };
    check_program_golden("sage061_feedback_cycle", &program, "SAGE061");
}

#[test]
fn sage062_depth_infeasible_memory() {
    // A 67 MB matrix striped over two 64 MB nodes: the 33.5 MB stripes fit
    // lock-step (no SAGE055), but a 2-slot ring would not, so the deepest
    // pipeline that fits is depth 1.
    let mut program = two_stage();
    program.buffers[0].shape = vec![4096, 2048];
    let hw = HardwareShelf::cspi_with_nodes(2);
    let diags = check_program(&program, &hw, None);
    assert!(
        !diags.diags.iter().any(|d| d.code == "SAGE055"),
        "fixture must fit lock-step: {:?}",
        diags.diags
    );
    check_program_golden("sage062_depth_infeasible_memory", &program, "SAGE062");
}

/// Two 2-threaded sources (rows-striped and cols-striped) fan into one
/// sink port on 2 nodes: cross-node overlapping writes with no ordering —
/// the mutation base for the race-pass fixtures.
fn fan_in_base() -> GlueProgram {
    GlueProgram {
        app_name: "golden".into(),
        functions: vec![
            descriptor(
                0,
                "a",
                "fill.a",
                FnRole::Source,
                2,
                vec![0, 1],
                vec![],
                vec![0],
            ),
            descriptor(
                1,
                "b",
                "fill.b",
                FnRole::Source,
                2,
                vec![0, 1],
                vec![],
                vec![1],
            ),
            descriptor(
                2,
                "snk",
                "sink.null",
                FnRole::Sink,
                2,
                vec![0, 1],
                vec![0, 1],
                vec![],
            ),
        ],
        buffers: vec![buffer(0, 0, 2, vec![4, 4]), {
            let mut b = buffer(1, 1, 2, vec![4, 4]);
            b.send_striping = Striping::BY_COLS;
            b
        }],
        schedules: vec![
            vec![t(0, 0), t(1, 0), t(2, 0)],
            vec![t(0, 1), t(1, 1), t(2, 1)],
        ],
    }
}

#[test]
fn sage070_fan_in_write_write_race() {
    check_program_golden("sage070_fan_in_write_write_race", &fan_in_base(), "SAGE070");
}

#[test]
fn sage071_read_write_race() {
    // A single-threaded replicated source `a` plus a rows-striped source
    // `b` fan into the sink: `b[0]`'s stripe lands in the full payload
    // `snk[1]` reads, but the only transfer from `b[0]` goes to `snk[0]` —
    // nothing orders the write against the cross-node read (SAGE071; the
    // unordered `a`/`b` write pair is the companion SAGE070).
    let mut program = fan_in_base();
    program.functions[0].threads = 1;
    program.functions[0].placement = vec![0];
    program.buffers[0].send_striping = Striping::Replicated;
    program.buffers[0].recv_striping = Striping::Replicated;
    program.buffers[1].send_striping = Striping::BY_ROWS;
    program.schedules = vec![vec![t(0, 0), t(1, 0), t(2, 0)], vec![t(1, 1), t(2, 1)]];
    check_program_golden("sage071_read_write_race", &program, "SAGE071");
}

#[test]
fn sage072_depth_conditional_race() {
    // Both writers on one node, one arc delayed: the lock-step iteration
    // boundary orders them, pipelined execution does not — the race pass
    // caps the buffers at depth 1 and the pipeline plan reports the cap.
    let mut program = fan_in_base();
    program.buffers[1].delay = 1;
    for b in &mut program.buffers {
        b.send_striping = Striping::Replicated;
        b.recv_striping = Striping::Replicated;
    }
    for f in &mut program.functions {
        f.threads = 1;
        f.placement = vec![0];
    }
    program.schedules = vec![vec![t(0, 0), t(1, 0), t(2, 0)]];
    check_program_golden("sage072_depth_conditional_race", &program, "SAGE072");
}

#[test]
fn sage073_benign_splat() {
    // The same generator with the same parameters splats identical
    // replicated payloads from two unordered cross-node threads: either
    // arrival order leaves the same bytes (warning, not error).
    let mut program = fan_in_base();
    program.functions[1].function = "fill.a".into();
    program.functions[1].placement = vec![1, 0];
    for b in &mut program.buffers {
        b.send_striping = Striping::Replicated;
        b.recv_striping = Striping::Replicated;
    }
    program.schedules = vec![
        vec![t(0, 0), t(1, 1), t(2, 0)],
        vec![t(0, 1), t(1, 0), t(2, 1)],
    ];
    check_program_golden("sage073_benign_splat", &program, "SAGE073");
}

/// Every golden fixture uses only codes from the published registry.
#[test]
fn golden_fixtures_only_use_registered_codes() {
    let dir = fixture_path("");
    for entry in std::fs::read_dir(&dir).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("expected") {
            continue;
        }
        let text = std::fs::read_to_string(&path).unwrap();
        for line in text.lines() {
            if let Some(start) = line.find("[SAGE") {
                let code = &line[start + 1..start + 8];
                assert!(
                    sage_lint::code_summary(code).is_some(),
                    "{}: unregistered code {code}",
                    path.display()
                );
            }
        }
    }
}
