//! Baseline mappers AToT's GA is compared against (and seeded with).

use crate::taskgraph::{TaskGraph, TaskMapping};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sage_model::ProcId;

/// Tasks dealt out `0, 1, 2, ... n-1, 0, 1, ...` in task order.
pub fn round_robin(graph: &TaskGraph, nodes: usize) -> TaskMapping {
    assert!(nodes > 0);
    TaskMapping {
        nodes: (0..graph.len())
            .map(|i| ProcId((i % nodes) as u32))
            .collect(),
    }
}

/// Thread-aligned mapping: thread `t` of every function goes to node
/// `t % nodes`. For SPMD dataflow apps this colocates matching stripes and
/// is the natural hand-mapping an engineer would draw in the Designer.
pub fn aligned(graph: &TaskGraph, nodes: usize) -> TaskMapping {
    assert!(nodes > 0);
    TaskMapping {
        nodes: graph
            .tasks
            .iter()
            .map(|t| ProcId((t.thread as usize % nodes) as u32))
            .collect(),
    }
}

/// Uniform random mapping (seeded).
pub fn random(graph: &TaskGraph, nodes: usize, seed: u64) -> TaskMapping {
    assert!(nodes > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    TaskMapping {
        nodes: (0..graph.len())
            .map(|_| ProcId(rng.random_range(0..nodes) as u32))
            .collect(),
    }
}

/// Greedy load balancing: tasks in descending compute order, each to the
/// currently least-loaded node (LPT). Ignores communication.
pub fn greedy_load(graph: &TaskGraph, nodes: usize) -> TaskMapping {
    assert!(nodes > 0);
    let mut order: Vec<usize> = (0..graph.len()).collect();
    order.sort_by(|&a, &b| graph.tasks[b].flops.total_cmp(&graph.tasks[a].flops));
    let mut load = vec![0.0f64; nodes];
    let mut assignment = vec![ProcId(0); graph.len()];
    for ti in order {
        let (node, _) = load
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .unwrap();
        assignment[ti] = ProcId(node as u32);
        load[node] += graph.tasks[ti].flops;
    }
    TaskMapping { nodes: assignment }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::taskgraph::TaskSpec;
    use sage_model::BlockId;

    fn graph(flops: &[f64]) -> TaskGraph {
        TaskGraph {
            tasks: flops
                .iter()
                .enumerate()
                .map(|(i, &f)| TaskSpec {
                    block: BlockId(0),
                    thread: i as u32,
                    flops: f,
                    mem_bytes: 0.0,
                    name: format!("t{i}"),
                })
                .collect(),
            edges: vec![],
        }
    }

    #[test]
    fn round_robin_deals_evenly() {
        let g = graph(&[1.0; 6]);
        let m = round_robin(&g, 3);
        assert_eq!(
            m.nodes,
            vec![
                ProcId(0),
                ProcId(1),
                ProcId(2),
                ProcId(0),
                ProcId(1),
                ProcId(2)
            ]
        );
    }

    #[test]
    fn aligned_follows_thread_index() {
        let g = graph(&[1.0; 4]);
        let m = aligned(&g, 2);
        assert_eq!(m.nodes, vec![ProcId(0), ProcId(1), ProcId(0), ProcId(1)]);
    }

    #[test]
    fn random_is_seeded() {
        let g = graph(&[1.0; 16]);
        assert_eq!(random(&g, 4, 7), random(&g, 4, 7));
        // Different seeds almost surely differ on 16 genes.
        assert_ne!(random(&g, 4, 7), random(&g, 4, 8));
    }

    #[test]
    fn greedy_balances_unequal_tasks() {
        // LPT on [5,4,3,3,3] over 2 nodes: 5 -> n0, 4 -> n1, 3 -> n1,
        // 3 -> n0, 3 -> n1 => loads 8 and 10.
        let g = graph(&[5.0, 4.0, 3.0, 3.0, 3.0]);
        let m = greedy_load(&g, 2);
        let mut load = [0.0f64; 2];
        for (t, p) in m.nodes.iter().enumerate() {
            load[p.index()] += g.tasks[t].flops;
        }
        let mut sorted = load;
        sorted.sort_by(f64::total_cmp);
        assert_eq!(sorted, [8.0, 10.0]);
    }
}

/// Simulated annealing: a single-solution metaheuristic baseline between
/// the greedy mappers and the GA. Starts from round-robin, proposes single
/// task moves, accepts uphill moves with temperature-decayed probability.
/// Deterministic under the seed.
pub fn simulated_annealing(
    graph: &TaskGraph,
    scheduler: &crate::schedule::Scheduler,
    nodes: usize,
    steps: usize,
    seed: u64,
) -> TaskMapping {
    assert!(nodes > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut current = round_robin(graph, nodes);
    let mut current_cost = scheduler.estimate(graph, &current).makespan;
    let mut best = current.clone();
    let mut best_cost = current_cost;
    let t0 = current_cost.max(f64::MIN_POSITIVE);
    for step in 0..steps {
        let temp = t0 * 0.5f64.powf(8.0 * step as f64 / steps.max(1) as f64);
        let task = rng.random_range(0..graph.len());
        let old = current.nodes[task];
        let new = ProcId(rng.random_range(0..nodes) as u32);
        if new == old {
            continue;
        }
        current.nodes[task] = new;
        let cost = scheduler.estimate(graph, &current).makespan;
        let accept = cost <= current_cost
            || rng.random_bool((-((cost - current_cost) / temp)).exp().clamp(0.0, 1.0));
        if accept {
            current_cost = cost;
            if cost < best_cost {
                best_cost = cost;
                best = current.clone();
            }
        } else {
            current.nodes[task] = old;
        }
    }
    best
}

#[cfg(test)]
mod sa_tests {
    use super::*;
    use crate::schedule::Scheduler;
    use crate::taskgraph::TaskSpec;
    use sage_model::{BlockId, FabricSpec, HardwareSpec, Processor};

    fn hw(nodes: usize) -> HardwareSpec {
        HardwareSpec::homogeneous(
            "hw",
            Processor {
                name: "p".into(),
                clock_mhz: 100.0,
                flops_per_cycle: 1.0,
                mem_mb: 64.0,
                mem_bw_mbps: 100.0,
            },
            1,
            nodes,
            FabricSpec {
                bandwidth_mbps: 10.0,
                latency_us: 10.0,
            },
            FabricSpec {
                bandwidth_mbps: 10.0,
                latency_us: 10.0,
            },
        )
    }

    #[test]
    fn annealing_improves_on_a_skewed_start() {
        // Unequal tasks where round-robin is poor: [8,8,1,1,1,1,1,1] on 2
        // nodes round-robins to loads 11/11? -> tasks 0,2,4,6 on n0 = 8+1+1+1
        // = 11. Actually balanced; use [8,8,1,1] -> rr loads 9/9, optimal 9.
        // Make rr bad: [8,1,8,1] -> rr n0 gets 8+8=16, n1 gets 2. SA should
        // find ~9.
        let graph = TaskGraph {
            tasks: [8.0e7, 1.0e7, 8.0e7, 1.0e7]
                .iter()
                .map(|&f| TaskSpec {
                    block: BlockId(0),
                    thread: 0,
                    flops: f,
                    mem_bytes: 0.0,
                    name: "t".into(),
                })
                .collect(),
            edges: vec![],
        };
        let s = Scheduler::new(&graph, &hw(2));
        let rr_cost = s.estimate(&graph, &round_robin(&graph, 2)).makespan;
        let sa = simulated_annealing(&graph, &s, 2, 400, 11);
        let sa_cost = s.estimate(&graph, &sa).makespan;
        assert!(sa_cost < rr_cost, "sa {sa_cost} vs rr {rr_cost}");
        assert!(
            (sa_cost - 0.9).abs() < 1e-9,
            "optimum is 0.9 s, got {sa_cost}"
        );
    }

    #[test]
    fn annealing_is_deterministic() {
        let graph = TaskGraph {
            tasks: (0..6)
                .map(|i| TaskSpec {
                    block: BlockId(0),
                    thread: i,
                    flops: 1.0e7 * (i + 1) as f64,
                    mem_bytes: 0.0,
                    name: "t".into(),
                })
                .collect(),
            edges: vec![],
        };
        let s = Scheduler::new(&graph, &hw(3));
        let a = simulated_annealing(&graph, &s, 3, 200, 5);
        let b = simulated_annealing(&graph, &s, 3, 200, 5);
        assert_eq!(a, b);
    }
}
