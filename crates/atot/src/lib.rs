//! # sage-atot
//!
//! **AToT** — the SAGE *Architecture Trades and Optimization Tool*.
//!
//! Paper §1.1: "After the architecture trades process has determined a
//! target hardware architecture, the genetic algorithm based partitioning
//! and mapping capability of AToT assigns the application tasks to the
//! multi-processor, heterogeneous architecture. AToT can be employed for
//! total design optimization, which includes load balancing of CPU
//! resources, optimizing over latency constraints, communication
//! minimization and scheduling of CPUs and busses."
//!
//! * [`taskgraph`] — expands a flattened Designer model into the task graph
//!   AToT optimizes over (one task per function thread, edges weighted with
//!   estimated redistribution bytes);
//! * [`schedule`] — a communication-aware list scheduler that estimates the
//!   makespan of a candidate mapping (the fitness oracle);
//! * [`ga`] — the genetic algorithm mapper (tournament selection, uniform
//!   crossover, elitism; deterministic under a seed);
//! * [`baselines`] — round-robin / random / greedy-load / aligned mappers
//!   used as comparison points;
//! * [`latency`] — latency-constraint evaluation;
//! * [`trades`] — architecture trade studies sweeping platforms and node
//!   counts.

#![warn(missing_docs)]

pub mod baselines;
pub mod ga;
pub mod latency;
pub mod schedule;
pub mod taskgraph;
pub mod trades;

pub use ga::{GaConfig, GaResult};
pub use schedule::{ScheduleEstimate, Scheduler};
pub use taskgraph::{TaskGraph, TaskMapping, TaskSpec};
pub use trades::{TradePoint, TradeStudy};
