//! The genetic-algorithm mapper.
//!
//! Chromosome = one node id per task. Fitness = estimated makespan from the
//! list scheduler plus a weighted communication-volume term and a penalty
//! for violating the latency constraint — "load balancing of CPU resources,
//! optimizing over latency constraints, communication minimization" (paper
//! §1.1). Deterministic under a fixed seed.

use crate::baselines;
use crate::schedule::Scheduler;
use crate::taskgraph::{TaskGraph, TaskMapping};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sage_model::ProcId;

/// GA hyper-parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GaConfig {
    /// Population size.
    pub population: usize,
    /// Generations to evolve.
    pub generations: usize,
    /// Tournament size for selection.
    pub tournament: usize,
    /// Per-gene mutation probability.
    pub mutation: f64,
    /// Elite individuals copied unchanged each generation.
    pub elitism: usize,
    /// Weight (seconds per byte) of the communication-volume term.
    pub comm_weight: f64,
    /// Optional latency (makespan) constraint in seconds; violations are
    /// penalized proportionally.
    pub latency_constraint: Option<f64>,
    /// RNG seed (the GA is fully deterministic given the seed).
    pub seed: u64,
}

impl Default for GaConfig {
    fn default() -> Self {
        GaConfig {
            population: 48,
            generations: 120,
            tournament: 3,
            mutation: 0.05,
            elitism: 2,
            comm_weight: 0.0,
            latency_constraint: None,
            seed: 0x5a6e,
        }
    }
}

/// The GA's outcome.
#[derive(Clone, Debug)]
pub struct GaResult {
    /// Best mapping found.
    pub mapping: TaskMapping,
    /// Its fitness (lower is better).
    pub fitness: f64,
    /// Its estimated makespan.
    pub makespan: f64,
    /// Best fitness per generation (monotone non-increasing with elitism).
    pub history: Vec<f64>,
}

/// Runs the GA, returning the best mapping found.
///
/// # Panics
/// Panics if the graph is empty or the hardware has no nodes.
pub fn optimize(graph: &TaskGraph, scheduler: &Scheduler, config: &GaConfig) -> GaResult {
    assert!(!graph.is_empty(), "nothing to map");
    let nodes = scheduler.node_count();
    assert!(nodes > 0);
    let genes = graph.len();
    let mut rng = StdRng::seed_from_u64(config.seed);

    let fitness_of = |m: &TaskMapping| -> (f64, f64) {
        let est = scheduler.estimate(graph, m);
        let mut fit = est.makespan + config.comm_weight * est.cut_bytes;
        if let Some(limit) = config.latency_constraint {
            if est.makespan > limit {
                fit += 10.0 * (est.makespan - limit);
            }
        }
        (fit, est.makespan)
    };

    // Seed the population with the baseline mappers plus random individuals,
    // so the GA never loses to its own baselines.
    let mut pop: Vec<Vec<ProcId>> = Vec::with_capacity(config.population);
    pop.push(baselines::round_robin(graph, nodes).nodes);
    pop.push(baselines::aligned(graph, nodes).nodes);
    pop.push(baselines::greedy_load(graph, nodes).nodes);
    while pop.len() < config.population.max(4) {
        pop.push(
            (0..genes)
                .map(|_| ProcId(rng.random_range(0..nodes) as u32))
                .collect(),
        );
    }

    let mut scored: Vec<(f64, f64, Vec<ProcId>)> = pop
        .into_iter()
        .map(|genome| {
            let m = TaskMapping {
                nodes: genome.clone(),
            };
            let (fit, ms) = fitness_of(&m);
            (fit, ms, genome)
        })
        .collect();
    scored.sort_by(|a, b| a.0.total_cmp(&b.0));

    let mut history = Vec::with_capacity(config.generations);
    for _ in 0..config.generations {
        history.push(scored[0].0);
        let mut next: Vec<(f64, f64, Vec<ProcId>)> =
            scored.iter().take(config.elitism).cloned().collect();
        while next.len() < scored.len() {
            let a = tournament(&scored, config.tournament, &mut rng);
            let b = tournament(&scored, config.tournament, &mut rng);
            // Uniform crossover.
            let mut child: Vec<ProcId> = (0..genes)
                .map(|g| {
                    if rng.random_bool(0.5) {
                        scored[a].2[g]
                    } else {
                        scored[b].2[g]
                    }
                })
                .collect();
            // Mutation.
            for gene in child.iter_mut() {
                if rng.random_bool(config.mutation) {
                    *gene = ProcId(rng.random_range(0..nodes) as u32);
                }
            }
            let m = TaskMapping {
                nodes: child.clone(),
            };
            let (fit, ms) = fitness_of(&m);
            next.push((fit, ms, child));
        }
        next.sort_by(|a, b| a.0.total_cmp(&b.0));
        scored = next;
    }
    history.push(scored[0].0);

    let best = &scored[0];
    GaResult {
        mapping: TaskMapping {
            nodes: best.2.clone(),
        },
        fitness: best.0,
        makespan: best.1,
        history,
    }
}

fn tournament(scored: &[(f64, f64, Vec<ProcId>)], k: usize, rng: &mut StdRng) -> usize {
    let mut best = rng.random_range(0..scored.len());
    for _ in 1..k.max(1) {
        let c = rng.random_range(0..scored.len());
        if scored[c].0 < scored[best].0 {
            best = c;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::taskgraph::{TaskEdge, TaskSpec};
    use sage_model::{BlockId, FabricSpec, HardwareSpec, Processor};

    fn hw(nodes: usize) -> HardwareSpec {
        HardwareSpec::homogeneous(
            "hw",
            Processor {
                name: "p".into(),
                clock_mhz: 100.0,
                flops_per_cycle: 1.0,
                mem_mb: 64.0,
                mem_bw_mbps: 100.0,
            },
            1,
            nodes,
            FabricSpec {
                bandwidth_mbps: 10.0,
                latency_us: 50.0,
            },
            FabricSpec {
                bandwidth_mbps: 10.0,
                latency_us: 50.0,
            },
        )
    }

    fn task(flops: f64) -> TaskSpec {
        TaskSpec {
            block: BlockId(0),
            thread: 0,
            flops,
            mem_bytes: 0.0,
            name: "t".into(),
        }
    }

    /// 8 independent equal tasks on 4 nodes: optimum = 2 tasks per node.
    fn balanced_problem() -> TaskGraph {
        TaskGraph {
            tasks: (0..8).map(|_| task(1e8)).collect(),
            edges: vec![],
        }
    }

    #[test]
    fn ga_finds_balanced_mapping() {
        let graph = balanced_problem();
        let s = Scheduler::new(&graph, &hw(4));
        let r = optimize(&graph, &s, &GaConfig::default());
        // Perfect balance: makespan 2 s.
        assert!((r.makespan - 2.0).abs() < 1e-9, "got {}", r.makespan);
    }

    #[test]
    fn elitism_makes_fitness_monotone() {
        let graph = balanced_problem();
        let s = Scheduler::new(&graph, &hw(4));
        let r = optimize(
            &graph,
            &s,
            &GaConfig {
                generations: 30,
                ..GaConfig::default()
            },
        );
        for w in r.history.windows(2) {
            assert!(w[1] <= w[0] + 1e-12, "fitness regressed: {w:?}");
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let graph = balanced_problem();
        let s = Scheduler::new(&graph, &hw(4));
        let cfg = GaConfig {
            generations: 20,
            ..GaConfig::default()
        };
        let a = optimize(&graph, &s, &cfg);
        let b = optimize(&graph, &s, &cfg);
        assert_eq!(a.mapping, b.mapping);
        assert_eq!(a.history, b.history);
    }

    #[test]
    fn comm_weight_pulls_chatty_tasks_together() {
        // Two tasks with a huge edge: with comm_weight the GA should
        // colocate them even though splitting balances load.
        let graph = TaskGraph {
            tasks: vec![task(1e6), task(1e6)],
            edges: vec![TaskEdge {
                from: 0,
                to: 1,
                bytes: 1e8,
            }],
        };
        let s = Scheduler::new(&graph, &hw(2));
        let r = optimize(
            &graph,
            &s,
            &GaConfig {
                comm_weight: 1e-6,
                ..GaConfig::default()
            },
        );
        assert_eq!(r.mapping.nodes[0], r.mapping.nodes[1]);
    }

    #[test]
    fn ga_beats_or_matches_random_baseline() {
        // Pipeline of unequal tasks with edges.
        let graph = TaskGraph {
            tasks: (0..12)
                .map(|i| task(1e7 * (1.0 + (i % 4) as f64)))
                .collect(),
            edges: (0..11)
                .map(|i| TaskEdge {
                    from: i,
                    to: i + 1,
                    bytes: 1e5,
                })
                .collect(),
        };
        let s = Scheduler::new(&graph, &hw(4));
        let ga = optimize(&graph, &s, &GaConfig::default());
        let rand_m = baselines::random(&graph, 4, 99);
        let rand_est = s.estimate(&graph, &rand_m);
        assert!(ga.makespan <= rand_est.makespan + 1e-12);
    }

    #[test]
    fn latency_constraint_penalizes_fitness() {
        let graph = balanced_problem();
        let s = Scheduler::new(&graph, &hw(1)); // 1 node: makespan 8 s
        let unconstrained = optimize(&graph, &s, &GaConfig::default());
        let constrained = optimize(
            &graph,
            &s,
            &GaConfig {
                latency_constraint: Some(1.0),
                ..GaConfig::default()
            },
        );
        assert!((unconstrained.makespan - 8.0).abs() < 1e-9);
        // Same makespan (no choice on 1 node) but penalized fitness.
        assert!(constrained.fitness > unconstrained.fitness + 10.0);
    }
}
