//! The task graph AToT optimizes over.
//!
//! A *task* is one thread of one function instance (the unit the run-time
//! schedules). The task graph carries per-task compute estimates from the
//! shelf cost models and per-edge byte estimates derived from the port
//! striping conventions — AToT optimizes against these estimates, not
//! against measured executions, exactly as the paper's tool flow does.

use sage_model::{AppGraph, BlockId, ProcId, Striping};

/// One schedulable task (a function thread).
#[derive(Clone, Debug, PartialEq)]
pub struct TaskSpec {
    /// Originating block.
    pub block: BlockId,
    /// Thread index within the block's function.
    pub thread: u32,
    /// Estimated flops (block cost divided over threads).
    pub flops: f64,
    /// Estimated memory traffic bytes (ditto).
    pub mem_bytes: f64,
    /// Display name, `block[t]`.
    pub name: String,
}

/// A directed data dependency between tasks with estimated payload bytes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TaskEdge {
    /// Producing task index.
    pub from: usize,
    /// Consuming task index.
    pub to: usize,
    /// Estimated bytes that move along this edge per iteration.
    pub bytes: f64,
}

/// A task-level mapping: node per task (what AToT produces and the glue-code
/// generator consumes as thread placements).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TaskMapping {
    /// `nodes[i]` is the processor of task `i`.
    pub nodes: Vec<ProcId>,
}

impl TaskMapping {
    /// Checks this mapping against a task graph and a node count, returning
    /// every problem found (wrong task coverage, nodes out of range).
    /// Returns an empty vector when the mapping is serviceable.
    pub fn check(&self, graph: &TaskGraph, node_count: usize) -> Vec<String> {
        let mut problems = Vec::new();
        if self.nodes.len() != graph.len() {
            problems.push(format!(
                "mapping covers {} tasks, task graph has {}",
                self.nodes.len(),
                graph.len()
            ));
        }
        for (i, node) in self.nodes.iter().enumerate() {
            if node.index() >= node_count {
                let name = graph
                    .tasks
                    .get(i)
                    .map(|t| t.name.clone())
                    .unwrap_or_else(|| format!("task {i}"));
                problems.push(format!(
                    "{name} mapped to node {}, hardware has {node_count}",
                    node.index()
                ));
            }
        }
        problems
    }

    /// Nodes (below `node_count`) that no task is mapped to.
    pub fn idle_nodes(&self, node_count: usize) -> Vec<usize> {
        let mut used = vec![false; node_count];
        for node in &self.nodes {
            if node.index() < node_count {
                used[node.index()] = true;
            }
        }
        used.iter()
            .enumerate()
            .filter(|(_, &u)| !u)
            .map(|(i, _)| i)
            .collect()
    }

    /// Total bytes crossing node boundaries under this mapping.
    pub fn cut_bytes(&self, graph: &TaskGraph) -> f64 {
        graph
            .edges
            .iter()
            .filter(|e| self.nodes[e.from] != self.nodes[e.to])
            .map(|e| e.bytes)
            .sum()
    }
}

/// The complete task graph of an application model.
#[derive(Clone, Debug, Default)]
pub struct TaskGraph {
    /// Tasks in (block, thread) order.
    pub tasks: Vec<TaskSpec>,
    /// Estimated data-dependency edges.
    pub edges: Vec<TaskEdge>,
}

impl TaskGraph {
    /// Expands a *flattened* application graph into tasks and estimated
    /// edges.
    ///
    /// Edge byte estimates follow the striping conventions:
    /// * identical striping and thread counts → aligned (diagonal) edges of
    ///   `total/threads` bytes;
    /// * differing striping dims (e.g. rows → columns) → all-to-all edges of
    ///   `total/(Tp*Tc)` bytes;
    /// * replicated producer → each consumer thread receives its stripe from
    ///   producer thread 0;
    /// * replicated consumer → every consumer thread receives the full
    ///   payload.
    pub fn from_model(graph: &AppGraph) -> TaskGraph {
        let mut tg = TaskGraph::default();
        // Task index of (block, thread).
        let mut base = vec![0usize; graph.block_count()];
        for (bi, b) in graph.blocks().iter().enumerate() {
            base[bi] = tg.tasks.len();
            let threads = b.threads() as u32;
            let cost = b.cost();
            for t in 0..threads {
                tg.tasks.push(TaskSpec {
                    block: BlockId::from_index(bi),
                    thread: t,
                    flops: cost.flops / threads as f64,
                    mem_bytes: cost.mem_bytes / threads as f64,
                    name: format!("{}[{t}]", b.name),
                });
            }
        }
        for c in graph.connections() {
            let pb = &graph.blocks()[c.from.block.index()];
            let cb = &graph.blocks()[c.to.block.index()];
            let tp = pb.threads();
            let tc = cb.threads();
            let total = graph.connection_bytes(c) as f64;
            let sp = pb.ports[c.from.port].striping;
            let sc = cb.ports[c.to.port].striping;
            let pbase = base[c.from.block.index()];
            let cbase = base[c.to.block.index()];
            match (sp, sc) {
                (Striping::Replicated, Striping::Replicated) => {
                    for j in 0..tc {
                        tg.edges.push(TaskEdge {
                            from: pbase,
                            to: cbase + j,
                            bytes: total,
                        });
                    }
                }
                (Striping::Replicated, Striping::Striped { .. }) => {
                    for j in 0..tc {
                        tg.edges.push(TaskEdge {
                            from: pbase,
                            to: cbase + j,
                            bytes: total / tc as f64,
                        });
                    }
                }
                (Striping::Striped { .. }, Striping::Replicated) => {
                    for i in 0..tp {
                        for j in 0..tc {
                            tg.edges.push(TaskEdge {
                                from: pbase + i,
                                to: cbase + j,
                                bytes: total / tp as f64,
                            });
                        }
                    }
                }
                (Striping::Striped { dim: dp }, Striping::Striped { dim: dc }) => {
                    if dp == dc {
                        // Aligned or nested distribution along one dim.
                        if tp == tc {
                            for t in 0..tp {
                                tg.edges.push(TaskEdge {
                                    from: pbase + t,
                                    to: cbase + t,
                                    bytes: total / tp as f64,
                                });
                            }
                        } else {
                            // Coarser/finer stripes: each consumer reads from
                            // the producer(s) covering its slice.
                            for j in 0..tc {
                                let lo = j * tp / tc;
                                let hi = ((j + 1) * tp).div_ceil(tc);
                                for i in lo..hi.max(lo + 1).min(tp) {
                                    tg.edges.push(TaskEdge {
                                        from: pbase + i,
                                        to: cbase + j,
                                        bytes: total / (tc as f64 * (hi - lo).max(1) as f64),
                                    });
                                }
                            }
                        }
                    } else {
                        // Corner turn: all-to-all tiles.
                        for i in 0..tp {
                            for j in 0..tc {
                                tg.edges.push(TaskEdge {
                                    from: pbase + i,
                                    to: cbase + j,
                                    bytes: total / (tp * tc) as f64,
                                });
                            }
                        }
                    }
                }
            }
        }
        tg
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// `true` if there are no tasks.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Total estimated flops.
    pub fn total_flops(&self) -> f64 {
        self.tasks.iter().map(|t| t.flops).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sage_model::{Block, CostModel, DataType, Port};

    fn two_stage(tp: usize, tc: usize, sp: Striping, sc: Striping) -> AppGraph {
        let mut g = AppGraph::new("g");
        let dt = DataType::complex_matrix(16, 16);
        let a = g.add_block(Block::primitive(
            "a",
            "id",
            tp,
            CostModel::new(100.0, 0.0),
            vec![Port::output("out", dt.clone(), sp)],
        ));
        let b = g.add_block(Block::primitive(
            "b",
            "id",
            tc,
            CostModel::new(200.0, 0.0),
            vec![Port::input("in", dt, sc)],
        ));
        g.connect(a, "out", b, "in").unwrap();
        g
    }

    const TOTAL: f64 = 16.0 * 16.0 * 8.0;

    #[test]
    fn tasks_split_block_cost() {
        let tg = TaskGraph::from_model(&two_stage(4, 2, Striping::BY_ROWS, Striping::BY_ROWS));
        assert_eq!(tg.len(), 6);
        assert_eq!(tg.tasks[0].flops, 25.0);
        assert_eq!(tg.tasks[4].flops, 100.0);
        assert_eq!(tg.total_flops(), 300.0);
        assert_eq!(tg.tasks[1].name, "a[1]");
    }

    #[test]
    fn aligned_edges_are_diagonal() {
        let tg = TaskGraph::from_model(&two_stage(4, 4, Striping::BY_ROWS, Striping::BY_ROWS));
        assert_eq!(tg.edges.len(), 4);
        for (t, e) in tg.edges.iter().enumerate() {
            assert_eq!(e.from, t);
            assert_eq!(e.to, 4 + t);
            assert_eq!(e.bytes, TOTAL / 4.0);
        }
    }

    #[test]
    fn corner_turn_edges_are_all_to_all() {
        let tg = TaskGraph::from_model(&two_stage(4, 4, Striping::BY_ROWS, Striping::BY_COLS));
        assert_eq!(tg.edges.len(), 16);
        for e in &tg.edges {
            assert_eq!(e.bytes, TOTAL / 16.0);
        }
        let sum: f64 = tg.edges.iter().map(|e| e.bytes).sum();
        assert_eq!(sum, TOTAL);
    }

    #[test]
    fn replicated_consumer_gets_full_payload() {
        let tg = TaskGraph::from_model(&two_stage(2, 3, Striping::BY_ROWS, Striping::Replicated));
        assert_eq!(tg.edges.len(), 6);
        for e in &tg.edges {
            assert_eq!(e.bytes, TOTAL / 2.0);
        }
    }

    #[test]
    fn replicated_producer_sends_from_thread_zero() {
        let tg = TaskGraph::from_model(&two_stage(3, 2, Striping::Replicated, Striping::BY_ROWS));
        assert_eq!(tg.edges.len(), 2);
        for e in &tg.edges {
            assert_eq!(e.from, 0);
            assert_eq!(e.bytes, TOTAL / 2.0);
        }
    }

    #[test]
    fn mapping_check_reports_coverage_and_range() {
        let tg = TaskGraph::from_model(&two_stage(2, 2, Striping::BY_ROWS, Striping::BY_ROWS));
        let good = TaskMapping {
            nodes: vec![ProcId(0), ProcId(1), ProcId(0), ProcId(1)],
        };
        assert!(good.check(&tg, 2).is_empty());
        assert!(good.idle_nodes(2).is_empty());
        let bad = TaskMapping {
            nodes: vec![ProcId(0), ProcId(5), ProcId(0)],
        };
        let problems = bad.check(&tg, 2);
        assert_eq!(problems.len(), 2, "{problems:?}");
        assert!(problems[0].contains("covers 3 tasks"));
        assert!(problems[1].contains("a[1] mapped to node 5"));
        assert_eq!(bad.idle_nodes(3), vec![1, 2]);
    }

    #[test]
    fn cut_bytes_counts_cross_node_edges() {
        let tg = TaskGraph::from_model(&two_stage(2, 2, Striping::BY_ROWS, Striping::BY_ROWS));
        let same = TaskMapping {
            nodes: vec![ProcId(0); 4],
        };
        assert_eq!(same.cut_bytes(&tg), 0.0);
        let split = TaskMapping {
            nodes: vec![ProcId(0), ProcId(0), ProcId(1), ProcId(1)],
        };
        // Diagonal edges 0->2 and 1->3 both cross.
        assert_eq!(split.cut_bytes(&tg), TOTAL);
    }
}
