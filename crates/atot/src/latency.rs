//! Latency-constraint evaluation ("optimizing over latency constraints").

use crate::schedule::{ScheduleEstimate, Scheduler};
use crate::taskgraph::{TaskGraph, TaskMapping};

/// The verdict on one mapping against a latency budget.
#[derive(Clone, Debug, PartialEq)]
pub struct LatencyCheck {
    /// Estimated end-to-end latency (iteration makespan), seconds.
    pub latency: f64,
    /// The budget checked against.
    pub budget: f64,
    /// Slack = budget - latency (negative when violated).
    pub slack: f64,
}

impl LatencyCheck {
    /// `true` when the mapping meets the budget.
    pub fn satisfied(&self) -> bool {
        self.slack >= 0.0
    }
}

/// Checks `mapping` against a latency `budget`.
pub fn check(
    scheduler: &Scheduler,
    graph: &TaskGraph,
    mapping: &TaskMapping,
    budget: f64,
) -> (LatencyCheck, ScheduleEstimate) {
    let est = scheduler.estimate(graph, mapping);
    (
        LatencyCheck {
            latency: est.makespan,
            budget,
            slack: budget - est.makespan,
        },
        est,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines;
    use crate::taskgraph::TaskSpec;
    use sage_model::{BlockId, FabricSpec, HardwareSpec, Processor};

    #[test]
    fn slack_sign_reflects_budget() {
        let graph = TaskGraph {
            tasks: vec![TaskSpec {
                block: BlockId(0),
                thread: 0,
                flops: 1e8, // 1 s on the node below
                mem_bytes: 0.0,
                name: "t".into(),
            }],
            edges: vec![],
        };
        let hw = HardwareSpec::homogeneous(
            "hw",
            Processor {
                name: "p".into(),
                clock_mhz: 100.0,
                flops_per_cycle: 1.0,
                mem_mb: 1.0,
                mem_bw_mbps: 100.0,
            },
            1,
            1,
            FabricSpec {
                bandwidth_mbps: 1.0,
                latency_us: 1.0,
            },
            FabricSpec {
                bandwidth_mbps: 1.0,
                latency_us: 1.0,
            },
        );
        let s = Scheduler::new(&graph, &hw);
        let m = baselines::round_robin(&graph, 1);
        let (ok, _) = check(&s, &graph, &m, 2.0);
        assert!(ok.satisfied());
        assert!((ok.slack - 1.0).abs() < 1e-9);
        let (bad, _) = check(&s, &graph, &m, 0.5);
        assert!(!bad.satisfied());
        assert!(bad.slack < 0.0);
    }
}
