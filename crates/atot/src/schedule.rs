//! Communication-aware list scheduling: AToT's makespan estimator
//! ("scheduling of CPUs and busses").

use crate::taskgraph::{TaskGraph, TaskMapping};
use sage_model::HardwareSpec;

/// The estimate produced for one candidate mapping.
#[derive(Clone, Debug, PartialEq)]
pub struct ScheduleEstimate {
    /// Estimated iteration makespan, seconds.
    pub makespan: f64,
    /// Per-node busy time, seconds.
    pub node_busy: Vec<f64>,
    /// Estimated per-task completion times.
    pub finish: Vec<f64>,
    /// Total bytes crossing node boundaries.
    pub cut_bytes: f64,
}

impl ScheduleEstimate {
    /// Load imbalance: max busy / mean busy (1.0 = perfectly balanced).
    pub fn imbalance(&self) -> f64 {
        let max = self.node_busy.iter().cloned().fold(0.0, f64::max);
        let mean = self.node_busy.iter().sum::<f64>() / self.node_busy.len().max(1) as f64;
        if mean > 0.0 {
            max / mean
        } else {
            1.0
        }
    }
}

/// A list scheduler over a fixed task graph and hardware model.
///
/// Two estimation modes: [`Scheduler::estimate`] treats links as
/// contention-free (fast, used inside the GA loop), while
/// [`Scheduler::estimate_with_bus`] additionally serializes each node's
/// outgoing transfers through its NIC/bus — the paper's "scheduling of CPUs
/// and busses" — which penalizes mappings that funnel traffic through one
/// node.
pub struct Scheduler {
    flops_rate: Vec<f64>,
    mem_bw: Vec<f64>,
    /// Pairwise transfer estimate parameters: `lat[i][j]` seconds and
    /// `inv_bw[i][j]` seconds/byte.
    lat: Vec<Vec<f64>>,
    inv_bw: Vec<Vec<f64>>,
    /// Tasks in a topological order of the dependency edges.
    topo: Vec<usize>,
    preds: Vec<Vec<(usize, f64)>>,
}

impl Scheduler {
    /// Prepares a scheduler for `graph` on `hw`.
    ///
    /// # Panics
    /// Panics if the task graph has a dependency cycle (impossible for
    /// graphs expanded from validated models).
    pub fn new(graph: &TaskGraph, hw: &HardwareSpec) -> Scheduler {
        let flat = hw.flatten();
        let n = flat.len();
        let flops_rate: Vec<f64> = flat.iter().map(|p| p.proc.flops_per_sec()).collect();
        let mem_bw: Vec<f64> = flat.iter().map(|p| p.proc.mem_bw_mbps * 1e6).collect();
        let mut lat = vec![vec![0.0; n]; n];
        let mut inv_bw = vec![vec![0.0; n]; n];
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    let l = hw.link_between(&flat[i], &flat[j]);
                    lat[i][j] = l.latency_us * 1e-6;
                    inv_bw[i][j] = 1.0 / (l.bandwidth_mbps * 1e6);
                }
            }
        }
        // Topological order (Kahn).
        let t = graph.len();
        let mut indeg = vec![0usize; t];
        let mut succ: Vec<Vec<usize>> = vec![Vec::new(); t];
        let mut preds: Vec<Vec<(usize, f64)>> = vec![Vec::new(); t];
        for e in &graph.edges {
            indeg[e.to] += 1;
            succ[e.from].push(e.to);
            preds[e.to].push((e.from, e.bytes));
        }
        let mut ready: Vec<usize> = (0..t).filter(|&i| indeg[i] == 0).collect();
        ready.sort_unstable_by(|a, b| b.cmp(a));
        let mut topo = Vec::with_capacity(t);
        while let Some(i) = ready.pop() {
            topo.push(i);
            for &s in &succ[i] {
                indeg[s] -= 1;
                if indeg[s] == 0 {
                    ready.push(s);
                }
            }
            ready.sort_unstable_by(|a, b| b.cmp(a));
        }
        assert_eq!(topo.len(), t, "task graph has a cycle");
        Scheduler {
            flops_rate,
            mem_bw,
            lat,
            inv_bw,
            topo,
            preds,
        }
    }

    /// Number of nodes in the hardware model.
    pub fn node_count(&self) -> usize {
        self.flops_rate.len()
    }

    /// Estimates the schedule of `graph` under `mapping`: tasks start when
    /// their node is free and all predecessor data has arrived (cross-node
    /// edges charge `latency + bytes/bandwidth`).
    pub fn estimate(&self, graph: &TaskGraph, mapping: &TaskMapping) -> ScheduleEstimate {
        let nodes = self.node_count();
        let mut node_free = vec![0.0f64; nodes];
        let mut node_busy = vec![0.0f64; nodes];
        let mut finish = vec![0.0f64; graph.len()];
        for &ti in &self.topo {
            let node = mapping.nodes[ti].index();
            let mut ready = node_free[node];
            for &(p, bytes) in &self.preds[ti] {
                let pn = mapping.nodes[p].index();
                let arrive = if pn == node {
                    finish[p]
                } else {
                    finish[p] + self.lat[pn][node] + bytes * self.inv_bw[pn][node]
                };
                ready = ready.max(arrive);
            }
            let t = &graph.tasks[ti];
            let dur = t.flops / self.flops_rate[node] + t.mem_bytes / self.mem_bw[node];
            finish[ti] = ready + dur;
            node_free[node] = finish[ti];
            node_busy[node] += dur;
        }
        ScheduleEstimate {
            makespan: finish.iter().cloned().fold(0.0, f64::max),
            node_busy,
            finish,
            cut_bytes: mapping.cut_bytes(graph),
        }
    }

    /// Like [`Scheduler::estimate`], but outgoing transfers serialize
    /// through the sending node's bus: a transfer cannot start before both
    /// the producing task has finished and the sender's bus is free.
    pub fn estimate_with_bus(&self, graph: &TaskGraph, mapping: &TaskMapping) -> ScheduleEstimate {
        let nodes = self.node_count();
        let mut node_free = vec![0.0f64; nodes];
        let mut bus_free = vec![0.0f64; nodes];
        let mut node_busy = vec![0.0f64; nodes];
        let mut finish = vec![0.0f64; graph.len()];
        for &ti in &self.topo {
            let node = mapping.nodes[ti].index();
            let mut ready = node_free[node];
            for &(p, bytes) in &self.preds[ti] {
                let pn = mapping.nodes[p].index();
                let arrive = if pn == node {
                    finish[p]
                } else {
                    // Serialize on the sender's bus.
                    let start = finish[p].max(bus_free[pn]);
                    let xfer = bytes * self.inv_bw[pn][node];
                    bus_free[pn] = start + xfer;
                    start + xfer + self.lat[pn][node]
                };
                ready = ready.max(arrive);
            }
            let t = &graph.tasks[ti];
            let dur = t.flops / self.flops_rate[node] + t.mem_bytes / self.mem_bw[node];
            finish[ti] = ready + dur;
            node_free[node] = finish[ti];
            node_busy[node] += dur;
        }
        ScheduleEstimate {
            makespan: finish.iter().cloned().fold(0.0, f64::max),
            node_busy,
            finish,
            cut_bytes: mapping.cut_bytes(graph),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::taskgraph::{TaskEdge, TaskSpec};
    use sage_model::{BlockId, FabricSpec, HardwareSpec, ProcId, Processor};

    fn hw(nodes: usize) -> HardwareSpec {
        HardwareSpec::homogeneous(
            "hw",
            Processor {
                name: "p".into(),
                clock_mhz: 100.0,
                flops_per_cycle: 1.0, // 1e8 flops/s
                mem_mb: 64.0,
                mem_bw_mbps: 100.0,
            },
            1,
            nodes,
            FabricSpec {
                bandwidth_mbps: 10.0, // 1e7 B/s
                latency_us: 100.0,
            },
            FabricSpec {
                bandwidth_mbps: 10.0,
                latency_us: 100.0,
            },
        )
    }

    fn task(flops: f64) -> TaskSpec {
        TaskSpec {
            block: BlockId(0),
            thread: 0,
            flops,
            mem_bytes: 0.0,
            name: "t".into(),
        }
    }

    #[test]
    fn independent_tasks_parallelize() {
        let graph = TaskGraph {
            tasks: vec![task(1e8), task(1e8)],
            edges: vec![],
        };
        let s = Scheduler::new(&graph, &hw(2));
        let together = s.estimate(
            &graph,
            &TaskMapping {
                nodes: vec![ProcId(0), ProcId(0)],
            },
        );
        let apart = s.estimate(
            &graph,
            &TaskMapping {
                nodes: vec![ProcId(0), ProcId(1)],
            },
        );
        assert!((together.makespan - 2.0).abs() < 1e-9);
        assert!((apart.makespan - 1.0).abs() < 1e-9);
        assert!((apart.imbalance() - 1.0).abs() < 1e-9);
        assert!(together.imbalance() > 1.9);
    }

    #[test]
    fn cross_node_edges_charge_transfer() {
        let graph = TaskGraph {
            tasks: vec![task(1e8), task(1e8)],
            edges: vec![TaskEdge {
                from: 0,
                to: 1,
                bytes: 1e7, // 1 second at 10 MB/s
            }],
        };
        let s = Scheduler::new(&graph, &hw(2));
        let local = s.estimate(
            &graph,
            &TaskMapping {
                nodes: vec![ProcId(0), ProcId(0)],
            },
        );
        let remote = s.estimate(
            &graph,
            &TaskMapping {
                nodes: vec![ProcId(0), ProcId(1)],
            },
        );
        assert!((local.makespan - 2.0).abs() < 1e-9);
        assert!((remote.makespan - (1.0 + 1.0 + 1e-4 + 1.0)).abs() < 1e-6);
        assert_eq!(local.cut_bytes, 0.0);
        assert_eq!(remote.cut_bytes, 1e7);
    }

    #[test]
    fn chain_respects_dependencies() {
        let graph = TaskGraph {
            tasks: vec![task(1e8), task(1e8), task(1e8)],
            edges: vec![
                TaskEdge {
                    from: 0,
                    to: 1,
                    bytes: 0.0,
                },
                TaskEdge {
                    from: 1,
                    to: 2,
                    bytes: 0.0,
                },
            ],
        };
        let s = Scheduler::new(&graph, &hw(3));
        // Spread over 3 nodes: still serial because of the chain (zero-byte
        // edges still pay latency).
        let e = s.estimate(
            &graph,
            &TaskMapping {
                nodes: vec![ProcId(0), ProcId(1), ProcId(2)],
            },
        );
        assert!((e.makespan - (3.0 + 2.0e-4)).abs() < 1e-6);
    }

    #[test]
    fn mem_traffic_charged() {
        let graph = TaskGraph {
            tasks: vec![TaskSpec {
                block: BlockId(0),
                thread: 0,
                flops: 0.0,
                mem_bytes: 1e8, // 1 s at 100 MB/s
                name: "m".into(),
            }],
            edges: vec![],
        };
        let s = Scheduler::new(&graph, &hw(1));
        let e = s.estimate(
            &graph,
            &TaskMapping {
                nodes: vec![ProcId(0)],
            },
        );
        assert!((e.makespan - 1.0).abs() < 1e-9);
    }
}

#[cfg(test)]
mod bus_tests {
    use super::*;
    use crate::taskgraph::{TaskEdge, TaskGraph, TaskMapping, TaskSpec};
    use sage_model::{BlockId, FabricSpec, HardwareSpec, ProcId, Processor};

    fn hw(nodes: usize) -> HardwareSpec {
        HardwareSpec::homogeneous(
            "hw",
            Processor {
                name: "p".into(),
                clock_mhz: 100.0,
                flops_per_cycle: 1.0,
                mem_mb: 64.0,
                mem_bw_mbps: 100.0,
            },
            1,
            nodes,
            FabricSpec {
                bandwidth_mbps: 10.0, // 1e7 B/s
                latency_us: 0.0,
            },
            FabricSpec {
                bandwidth_mbps: 10.0,
                latency_us: 0.0,
            },
        )
    }

    fn task(flops: f64) -> TaskSpec {
        TaskSpec {
            block: BlockId(0),
            thread: 0,
            flops,
            mem_bytes: 0.0,
            name: "t".into(),
        }
    }

    #[test]
    fn bus_serializes_fan_out_transfers() {
        // One producer fans 1e7-byte payloads (1 s each on the wire) out to
        // two consumers on different nodes. Contention-free: both arrive at
        // t=1; bus-aware: the second transfer queues, arriving at t=2.
        let graph = TaskGraph {
            tasks: vec![task(0.0), task(0.0), task(0.0)],
            edges: vec![
                TaskEdge {
                    from: 0,
                    to: 1,
                    bytes: 1e7,
                },
                TaskEdge {
                    from: 0,
                    to: 2,
                    bytes: 1e7,
                },
            ],
        };
        let s = Scheduler::new(&graph, &hw(3));
        let m = TaskMapping {
            nodes: vec![ProcId(0), ProcId(1), ProcId(2)],
        };
        let free = s.estimate(&graph, &m);
        let bus = s.estimate_with_bus(&graph, &m);
        assert!((free.makespan - 1.0).abs() < 1e-9);
        assert!((bus.makespan - 2.0).abs() < 1e-9, "got {}", bus.makespan);
    }

    #[test]
    fn bus_and_free_agree_without_contention() {
        let graph = TaskGraph {
            tasks: vec![task(1e8), task(1e8)],
            edges: vec![TaskEdge {
                from: 0,
                to: 1,
                bytes: 1e6,
            }],
        };
        let s = Scheduler::new(&graph, &hw(2));
        let m = TaskMapping {
            nodes: vec![ProcId(0), ProcId(1)],
        };
        let a = s.estimate(&graph, &m).makespan;
        let b = s.estimate_with_bus(&graph, &m).makespan;
        assert!((a - b).abs() < 1e-12);
    }
}
