//! Architecture trade studies: sweep candidate platforms and node counts,
//! map each with the GA, and tabulate the results — the paper's
//! "optimization and trade-off activities" that "determine a target hardware
//! architecture".

use crate::ga::{optimize, GaConfig};
use crate::schedule::Scheduler;
use crate::taskgraph::TaskGraph;
use sage_model::HardwareShelf;
use std::fmt::Write;

/// One evaluated design point.
#[derive(Clone, Debug, PartialEq)]
pub struct TradePoint {
    /// Platform name.
    pub platform: String,
    /// Node count.
    pub nodes: usize,
    /// Best estimated makespan (seconds) found by the GA.
    pub makespan: f64,
    /// Bytes crossing node boundaries in the best mapping.
    pub cut_bytes: f64,
    /// Load imbalance of the best mapping.
    pub imbalance: f64,
}

/// A complete trade study over platforms × node counts.
#[derive(Clone, Debug, Default)]
pub struct TradeStudy {
    /// Evaluated points, in sweep order.
    pub points: Vec<TradePoint>,
}

impl TradeStudy {
    /// Runs the study for `graph` over the given `platforms` (hardware-shelf
    /// names) and `node_counts`.
    ///
    /// Unknown platform names are skipped (the shelf only stocks the four
    /// vendors of the paper's comparison).
    pub fn run(
        graph: &TaskGraph,
        platforms: &[&str],
        node_counts: &[usize],
        ga: &GaConfig,
    ) -> TradeStudy {
        let mut study = TradeStudy::default();
        for &platform in platforms {
            for &nodes in node_counts {
                let Some(hw) = HardwareShelf::by_name(platform, nodes) else {
                    continue;
                };
                let scheduler = Scheduler::new(graph, &hw);
                let result = optimize(graph, &scheduler, ga);
                let est = scheduler.estimate(graph, &result.mapping);
                study.points.push(TradePoint {
                    platform: platform.to_string(),
                    nodes,
                    makespan: result.makespan,
                    cut_bytes: est.cut_bytes,
                    imbalance: est.imbalance(),
                });
            }
        }
        study
    }

    /// The point with the smallest makespan.
    pub fn best(&self) -> Option<&TradePoint> {
        self.points
            .iter()
            .min_by(|a, b| a.makespan.total_cmp(&b.makespan))
    }

    /// Formats the study as an aligned text table.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "{:<10} {:>6} {:>14} {:>14} {:>10}",
            "platform", "nodes", "makespan(ms)", "cut(KB)", "imbalance"
        );
        for p in &self.points {
            let _ = writeln!(
                s,
                "{:<10} {:>6} {:>14.3} {:>14.1} {:>10.3}",
                p.platform,
                p.nodes,
                p.makespan * 1e3,
                p.cut_bytes / 1024.0,
                p.imbalance
            );
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::taskgraph::{TaskEdge, TaskSpec};
    use sage_model::BlockId;

    fn graph() -> TaskGraph {
        TaskGraph {
            tasks: (0..8)
                .map(|i| TaskSpec {
                    block: BlockId(0),
                    thread: i as u32,
                    flops: 2.0e7,
                    mem_bytes: 1.0e5,
                    name: format!("t{i}"),
                })
                .collect(),
            edges: (0..7)
                .map(|i| TaskEdge {
                    from: i,
                    to: i + 1,
                    bytes: 1.0e4,
                })
                .collect(),
        }
    }

    fn quick_ga() -> GaConfig {
        GaConfig {
            population: 16,
            generations: 10,
            ..GaConfig::default()
        }
    }

    #[test]
    fn study_covers_the_sweep() {
        let s = TradeStudy::run(&graph(), &["CSPI", "Mercury"], &[2, 4], &quick_ga());
        assert_eq!(s.points.len(), 4);
        assert!(s.best().is_some());
        let table = s.render();
        assert!(table.contains("CSPI") && table.contains("Mercury"));
        assert_eq!(table.lines().count(), 5);
    }

    #[test]
    fn unknown_platforms_skipped() {
        let s = TradeStudy::run(&graph(), &["Cray", "CSPI"], &[2], &quick_ga());
        assert_eq!(s.points.len(), 1);
        assert_eq!(s.points[0].platform, "CSPI");
    }

    #[test]
    fn faster_platform_wins_compute_bound_study() {
        // A serial chain cannot use more nodes, so the fastest CPU wins.
        let s = TradeStudy::run(&graph(), &["Mercury", "SIGI"], &[4], &quick_ga());
        let best = s.best().unwrap();
        assert_eq!(best.platform, "Mercury");
    }
}
