//! A self-contained, deterministic PRNG exposing the *subset* of the
//! `rand` crate API this workspace uses (`StdRng`, `SeedableRng`,
//! `Rng::random_range`, `Rng::random_bool`).
//!
//! The workspace aliases this crate as `rand` (see
//! `[workspace.dependencies]`), so call sites keep the idiomatic `rand`
//! spelling while builds stay fully offline / air-gapped. The generator is
//! SplitMix64 feeding xoshiro256**-style mixing — more than adequate for
//! seeded mapping heuristics and test-case generation, and stable across
//! platforms, which is what the determinism suite actually relies on.

#![warn(missing_docs)]

/// Named RNG engines (mirrors `rand::rngs`).
pub mod rngs {
    /// The standard seeded generator (SplitMix64 stream).
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        pub(crate) state: u64,
    }

    impl StdRng {
        /// Advances the stream and returns 64 fresh bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

use rngs::StdRng;

/// Construction of seedable generators (mirrors `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // Pre-whiten the seed so adjacent seeds give unrelated streams.
        let mut rng = StdRng { state: seed };
        let _ = rng.next_u64();
        StdRng {
            state: seed ^ rng.next_u64(),
        }
    }
}

/// A type that can be sampled uniformly from by [`Rng::random_range`]
/// (mirrors `rand::distr::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from(self, rng: &mut StdRng) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from(self, rng: &mut StdRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                if span == 0 {
                    // Full-width range: every bit pattern is valid.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from(self, rng: &mut StdRng) -> f64 {
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_from(self, rng: &mut StdRng) -> f32 {
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        (self.start as f64 + u * (self.end as f64 - self.start as f64)) as f32
    }
}

/// Random-value methods (mirrors `rand::Rng`).
pub trait Rng {
    /// Uniform draw from `range`.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T;
    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool;
}

impl Rng for StdRng {
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    fn random_bool(&mut self, p: f64) -> bool {
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_streams_reproduce() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: usize = rng.random_range(3..17);
            assert!((3..17).contains(&x));
            let y: i64 = rng.random_range(-5..=5);
            assert!((-5..=5).contains(&y));
            let f: f64 = rng.random_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn random_bool_respects_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!((0..100).all(|_| !rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
        let hits = (0..10_000).filter(|_| rng.random_bool(0.3)).count();
        assert!((2000..4000).contains(&hits), "got {hits}");
    }

    #[test]
    fn full_width_inclusive_range_works() {
        let mut rng = StdRng::seed_from_u64(11);
        let _: u64 = rng.random_range(0..=u64::MAX);
        let _: u8 = rng.random_range(0..=u8::MAX);
    }
}
